//! Document and corpus generation.

use crate::idiom::{IdiomInstance, IdiomKind};
use crate::names::{weighted_choice, NamePool};
use crate::render::{self, Helpers};
use crate::types::{sample_spec, TypeSpec};
use crate::{Document, FnTruth, GroundTruth, Language, TypeTruth, VarTruth};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for corpus generation.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Number of documents (files) to generate.
    pub files: usize,
    /// Minimum functions per file.
    pub min_functions: usize,
    /// Maximum functions per file.
    pub max_functions: usize,
    /// Per-slot probability of drawing an off-role (noisy) name.
    pub name_noise: f64,
    /// RNG seed; equal configs generate identical corpora.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            files: 600,
            min_functions: 1,
            max_functions: 3,
            name_noise: 0.05,
            seed: 0x9147_00D5,
        }
    }
}

impl CorpusConfig {
    /// Convenience: same config with a different file count.
    pub fn with_files(mut self, files: usize) -> Self {
        self.files = files;
        self
    }

    /// Convenience: same config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Convenience: same config with a different noise level.
    pub fn with_noise(mut self, name_noise: f64) -> Self {
        self.name_noise = name_noise;
        self
    }
}

/// A name pool with the language's reserved words pre-blocked, so a role
/// like `ResultValue` (whose class contains `out`) never draws a keyword.
/// For Python the builtins the renderers call are blocked too: a local
/// named `len` shadows the builtin for the whole function body, so
/// `len = len(items)` is an `UnboundLocalError` at runtime (and a
/// `use-before-def` finding under `pigeon audit`).
fn keyword_safe_pool(language: Language) -> NamePool {
    let keywords: &[&str] = match language {
        Language::JavaScript => pigeon_js::KEYWORDS,
        Language::Java => pigeon_java::KEYWORDS,
        Language::Python => pigeon_python::KEYWORDS,
        Language::CSharp => pigeon_csharp::KEYWORDS,
    };
    let mut pool = NamePool::new();
    for kw in keywords {
        pool.reserve(kw);
    }
    if language == Language::Python {
        for builtin in ["len", "range", "str", "open", "print", "enumerate"] {
            pool.reserve(builtin);
        }
    }
    pool
}

const CLASS_NAMES: &[(&str, u32)] = &[
    ("Worker", 15),
    ("Processor", 15),
    ("Service", 12),
    ("Manager", 12),
    ("Handler", 12),
    ("Engine", 10),
    ("TaskRunner", 8),
    ("Helper", 8),
    ("Collector", 8),
];

/// Generates one document in `language`.
pub fn generate_document<R: Rng>(language: Language, cfg: &CorpusConfig, rng: &mut R) -> Document {
    let helpers = Helpers::sample(rng);
    let n_functions = rng.gen_range(cfg.min_functions..=cfg.max_functions);
    let mut truth = GroundTruth::default();
    let mut bodies = Vec::new();

    // Choose idioms and (unique) method names first, then draw each
    // function's locals from its own pool — local names recur freely
    // across functions, as in real code, and the scope-resolved element
    // grouping keeps them apart.
    let mut base_pool = keyword_safe_pool(language);
    for h in [
        &helpers.check,
        &helpers.consume,
        &helpers.log,
        &helpers.read,
        &helpers.init,
        &helpers.pred_prop,
        &helpers.id_prop,
    ] {
        base_pool.reserve(h);
    }
    let mut plans: Vec<(IdiomKind, String)> = Vec::new();
    for _ in 0..n_functions {
        let kind = IdiomKind::ALL[rng.gen_range(0..IdiomKind::ALL.len())];
        let mut fn_name = kind.sample_method_name(rng).to_owned();
        if language == Language::CSharp {
            fn_name = capitalize(&fn_name);
        }
        if language == Language::Python {
            fn_name = to_snake(&fn_name);
        }
        // Method names stay unique per file: they group file-wide.
        while plans.iter().any(|(_, n)| *n == fn_name) {
            fn_name.push('2');
        }
        base_pool.reserve(&fn_name);
        plans.push((kind, fn_name));
    }

    for (kind, fn_name) in &plans {
        let mut pool = base_pool.clone();
        let inst = IdiomInstance::generate(*kind, &mut pool, cfg.name_noise, rng);
        for (_, name, role) in &inst.bindings {
            truth.vars.push(VarTruth {
                name: name.clone(),
                role: *role,
            });
        }
        truth.functions.push(FnTruth {
            name: fn_name.clone(),
            idiom: *kind,
        });
        let mut body = match language {
            Language::JavaScript => render::js::function(fn_name, &inst, &helpers),
            Language::Java => render::java::method(fn_name, &inst, &helpers),
            Language::Python => render::python::function(fn_name, &inst, &helpers),
            Language::CSharp => render::csharp::method(fn_name, &inst, &helpers),
        };
        let params: Vec<String> = inst
            .bindings
            .iter()
            .filter(|(slot, _, _)| kind.param_slots().contains(slot))
            .map(|(_, name, _)| name.clone())
            .collect();
        let bound: Vec<String> = inst
            .bindings
            .iter()
            .map(|(_, name, _)| name.clone())
            .collect();
        insert_distractors(language, &mut body, &params, &bound, rng);
        bodies.push(body);
    }

    // With some probability, a driver function invokes the others. The
    // paper's method-name task uses "paths from invocations of the method
    // to the method name ... when available in the same file" (§5.3.2) —
    // these call sites are that external evidence. Call-site paths span
    // functions, which is why method naming needs much longer paths than
    // variable naming (the paper's lengths 12/10/6 vs 6–7).
    if rng.gen_bool(0.6) && !plans.is_empty() {
        bodies.push(render_driver(language, &plans, rng));
    }

    let source = wrap(language, &bodies, rng);
    Document { source, truth }
}

/// Statements that mention canonical role names next to the function's
/// real variables in *unrelated* syntactic positions (logging/telemetry
/// calls like `track(done, count)`). Every relation-blind representation
/// -- the no-path bag and the single-statement relations baseline -- sees
/// the misleading co-occurrence as if it were evidence; a path-based model
/// sees a distinctive call-argument path it can learn to discount. This is
/// the paper's Fig. 3 discriminability argument, installed in the data.
///
/// Only *parameters* appear next to the canonical name: they are defined
/// from function entry, so the prelude stays clean under the data-flow
/// lints (a local would be read before its declaration). For the same
/// reason a line is dropped when the drawn canonical name collides with
/// one of the function's own bindings (`bound`).
fn insert_distractors<R: Rng>(
    language: Language,
    body: &mut String,
    params: &[String],
    bound: &[String],
    rng: &mut R,
) {
    let n = rng.gen_range(0..=2);
    if n == 0 || params.is_empty() {
        return;
    }
    let mut lines = String::new();
    for _ in 0..n {
        let role = crate::names::Role::ALL[rng.gen_range(0..crate::names::Role::ALL.len())];
        let callee = crate::render::sample_callee(rng);
        let local = &params[rng.gen_range(0..params.len())];
        let name = role.canonical();
        if bound.iter().any(|b| b == name) {
            continue;
        }
        match language {
            Language::JavaScript => {
                lines.push_str(&format!("  {callee}({local}, {name});\n"));
            }
            Language::Java => {
                lines.push_str(&format!("        {callee}({local}, {name});\n"));
            }
            Language::CSharp => {
                let callee = capitalize(&callee);
                lines.push_str(&format!("        {callee}({local}, {name});\n"));
            }
            Language::Python => {
                lines.push_str(&format!("    {callee}({local}, {name})\n"));
            }
        }
    }
    // Insert at the start of the function body.
    let anchor = match language {
        Language::JavaScript | Language::Java | Language::CSharp => body.find("{\n"),
        Language::Python => body.find(":\n"),
    };
    if let Some(pos) = anchor {
        body.insert_str(pos + 2, &lines);
    }
}

const DRIVER_NAMES: &[(&str, u32)] = &[
    ("main", 40),
    ("start", 20),
    ("bootstrap", 15),
    ("launch", 15),
    ("entry", 10),
];

/// Renders a driver function that calls each planned function with
/// plausible (canonically named, undeclared) arguments.
fn render_driver<R: Rng>(language: Language, plans: &[(IdiomKind, String)], rng: &mut R) -> String {
    let driver = weighted_choice(DRIVER_NAMES, rng).to_owned();
    let calls: Vec<String> = plans
        .iter()
        .map(|(kind, fn_name)| {
            let args: Vec<&str> = kind
                .slots()
                .iter()
                .filter(|(slot, _)| kind.param_slots().contains(slot))
                .map(|&(_, role)| role.canonical())
                .collect();
            (fn_name.clone(), args.join(", "))
        })
        .map(|(f, a)| match language {
            Language::Python => format!("    {f}({a})\n"),
            Language::Java | Language::CSharp => format!("        {f}({a});\n"),
            Language::JavaScript => format!("  {f}({a});\n"),
        })
        .collect();
    match language {
        Language::JavaScript => {
            format!("function {driver}() {{\n{}}}\n", calls.concat())
        }
        Language::Python => format!("def {driver}():\n{}", calls.concat()),
        Language::Java => format!("    void {driver}() {{\n{}    }}\n", calls.concat()),
        Language::CSharp => format!(
            "    public void {}() {{\n{}    }}\n",
            capitalize(&driver),
            calls.concat()
        ),
    }
}

/// Wraps rendered functions in the language's compilation-unit shape.
fn wrap<R: Rng>(language: Language, bodies: &[String], rng: &mut R) -> String {
    match language {
        Language::JavaScript | Language::Python => bodies.join("\n"),
        Language::Java => {
            let class = weighted_choice(CLASS_NAMES, rng);
            format!("class {class} {{\n{}}}\n", bodies.join("\n"))
        }
        Language::CSharp => {
            let class = weighted_choice(CLASS_NAMES, rng);
            format!(
                "namespace App {{\nclass {class} {{\n{}}}\n}}\n",
                bodies.join("\n")
            )
        }
    }
}

/// Generates a corpus of `cfg.files` documents in `language`.
pub fn generate(language: Language, cfg: &CorpusConfig) -> crate::Corpus {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ language as u64);
    let docs = (0..cfg.files)
        .map(|_| generate_document(language, cfg, &mut rng))
        .collect();
    crate::Corpus { language, docs }
}

const TYPE_METHOD_NAMES: &[(&str, u32)] = &[
    ("process", 20),
    ("run", 20),
    ("build", 15),
    ("prepare", 15),
    ("execute", 15),
    ("handle", 15),
];

/// Generates one typed-Java document for the full-type task, recording a
/// [`TypeTruth`] per declaration.
pub fn generate_type_document<R: Rng>(cfg: &CorpusConfig, rng: &mut R) -> Document {
    let n_methods = rng.gen_range(cfg.min_functions..=cfg.max_functions);
    let mut pool = keyword_safe_pool(Language::Java);
    let mut truth = GroundTruth::default();
    let mut bodies = Vec::new();

    for m in 0..n_methods {
        let n_decls = rng.gen_range(2..=4);
        let specs: Vec<&TypeSpec> = (0..n_decls).map(|_| sample_spec(rng)).collect();

        // Merge the parameter dependencies of all specs, first wins.
        let mut deps: Vec<(&str, &str)> = Vec::new();
        for spec in &specs {
            for &(name, ty) in spec.deps {
                if !deps.iter().any(|&(n, _)| n == name) {
                    deps.push((name, ty));
                }
            }
        }
        let params = deps
            .iter()
            .map(|&(n, t)| format!("{t} {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let method_name = format!("{}{m}", weighted_choice(TYPE_METHOD_NAMES, rng));
        let mut body = format!("    void {method_name}({params}) {{\n");
        for spec in &specs {
            let var = pool.draw(spec.role, rng);
            let first_dep = spec.deps.first().map(|&(n, _)| n).unwrap_or("raw");
            // With some probability the initialiser is an erased factory
            // lookup that carries no type evidence — for ambiguous surface
            // names, only the follow-up uses can then disambiguate, which
            // keeps the task from being trivially solvable.
            let init = if rng.gen_bool(0.35) {
                format!("({}) registry.lookup(slot)", spec.surface)
            } else {
                spec.init.replace("$P", first_dep)
            };
            body.push_str(&format!("        {} {var} = {init};\n", spec.surface));
            // Characteristic uses are the disambiguating evidence; some
            // declarations get none, and some only a generic use that any
            // type could have — both cap the achievable accuracy, like
            // the locally-undecidable expressions of the real task.
            match rng.gen_range(0..10) {
                0..=2 => {}
                3..=4 => {
                    body.push_str(&format!("        log({var});\n"));
                }
                n => {
                    let n_uses = if n >= 8 { 2.min(spec.uses.len()) } else { 1 };
                    for u in spec.uses.iter().take(n_uses) {
                        let stmt = u.replace("$V", &var).replace("$P", first_dep);
                        body.push_str(&format!("        {stmt}\n"));
                    }
                }
            }
            truth.types.push(TypeTruth {
                var,
                fqn: spec.fqn.to_owned(),
            });
        }
        body.push_str("    }\n");
        bodies.push(body);
        truth.functions.push(FnTruth {
            name: method_name,
            idiom: IdiomKind::ReadConfig,
        });
    }

    let class = {
        let mut rng2 = SmallRng::seed_from_u64(rng.gen());
        weighted_choice(CLASS_NAMES, &mut rng2)
    };
    Document {
        source: format!("class {class} {{\n{}}}\n", bodies.join("\n")),
        truth,
    }
}

/// Generates a typed-Java corpus for the full-type task.
pub fn generate_java_types(cfg: &CorpusConfig) -> crate::Corpus {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x00A1_1CE5);
    let docs = (0..cfg.files)
        .map(|_| generate_type_document(cfg, &mut rng))
        .collect();
    crate::Corpus {
        language: Language::Java,
        docs,
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Converts a camelCase method name to Python's snake_case convention.
fn to_snake(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 4);
    for c in s.chars() {
        if c.is_ascii_uppercase() {
            out.push('_');
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_parse_in_every_language() {
        let cfg = CorpusConfig::default().with_files(25);
        for language in Language::ALL {
            let corpus = generate(language, &cfg);
            assert_eq!(corpus.docs.len(), 25);
            for doc in &corpus.docs {
                language.parse(&doc.source).unwrap_or_else(|e| {
                    panic!("{language:?} doc failed to parse: {e}\n{}", doc.source)
                });
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = CorpusConfig::default().with_files(5);
        let a = generate(Language::JavaScript, &cfg);
        let b = generate(Language::JavaScript, &cfg);
        for (x, y) in a.docs.iter().zip(&b.docs) {
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn different_languages_get_different_streams() {
        let cfg = CorpusConfig::default().with_files(3);
        let js = generate(Language::JavaScript, &cfg);
        let py = generate(Language::Python, &cfg);
        assert_ne!(js.docs[0].source, py.docs[0].source);
    }

    #[test]
    fn truth_names_appear_in_source() {
        let cfg = CorpusConfig::default().with_files(10);
        for language in Language::ALL {
            let corpus = generate(language, &cfg);
            for doc in &corpus.docs {
                for v in &doc.truth.vars {
                    assert!(
                        doc.source.contains(&v.name),
                        "{language:?}: `{}` missing from source",
                        v.name
                    );
                }
                for f in &doc.truth.functions {
                    assert!(doc.source.contains(&f.name));
                }
            }
        }
    }

    #[test]
    fn method_names_are_unique_per_file() {
        let cfg = CorpusConfig {
            files: 20,
            min_functions: 3,
            max_functions: 4,
            ..CorpusConfig::default()
        };
        let corpus = generate(Language::JavaScript, &cfg);
        for doc in &corpus.docs {
            let mut names: Vec<_> = doc.truth.functions.iter().map(|f| &f.name).collect();
            names.sort();
            let before = names.len();
            names.dedup();
            assert_eq!(names.len(), before);
        }
    }

    #[test]
    fn type_documents_parse_and_carry_type_truth() {
        let cfg = CorpusConfig::default().with_files(30);
        let corpus = generate_java_types(&cfg);
        let mut total_types = 0;
        for doc in &corpus.docs {
            pigeon_java::parse(&doc.source)
                .unwrap_or_else(|e| panic!("type doc failed to parse: {e}\n{}", doc.source));
            assert!(!doc.truth.types.is_empty());
            total_types += doc.truth.types.len();
            for t in &doc.truth.types {
                assert!(doc.source.contains(&t.var));
                assert!(t.fqn.contains('.'));
            }
        }
        assert!(total_types > 100);
    }

    #[test]
    fn type_truth_vars_are_unique_per_file() {
        let cfg = CorpusConfig::default().with_files(20);
        let corpus = generate_java_types(&cfg);
        for doc in &corpus.docs {
            let mut vars: Vec<_> = doc.truth.types.iter().map(|t| &t.var).collect();
            vars.sort();
            let before = vars.len();
            vars.dedup();
            assert_eq!(vars.len(), before, "duplicate typed var in one file");
        }
    }

    #[test]
    fn snake_case_conversion() {
        assert_eq!(to_snake("buildMessage"), "build_message");
        assert_eq!(to_snake("sum"), "sum");
    }
}
