//! Typed-Java generation for the full-type prediction task (§5.3.3).
//!
//! The paper predicts *fully-qualified* expression types — e.g.
//! `com.mysql.jdbc.Connection` rather than `org.apache.http.Connection` —
//! for expressions whose type a global inference engine could solve.
//! Our generator plays the role of that engine: it emits declarations
//! whose ground-truth FQN it knows, including deliberately ambiguous
//! simple names (two `Connection`s, two `Document`s) that can only be
//! told apart from the surrounding usage paths.

use crate::names::Role;
use rand::Rng;

/// One generatable declaration pattern with a known full type.
#[derive(Debug, Clone, Copy)]
pub struct TypeSpec {
    /// The fully-qualified type name — the label to predict.
    pub fqn: &'static str,
    /// The surface type written in the declaration (without package).
    pub surface: &'static str,
    /// The initialiser expression; `$P` splices the first dependency's
    /// parameter name.
    pub init: &'static str,
    /// Characteristic follow-up statements; `$V` splices the declared
    /// variable.
    pub uses: &'static [&'static str],
    /// Method parameters the initialiser and uses refer to.
    pub deps: &'static [(&'static str, &'static str)],
    /// The naming role for the declared variable.
    pub role: Role,
    /// Relative frequency in the corpus.
    pub weight: u32,
}

/// The type catalogue. `java.lang.String` carries ~24% of the mass so the
/// paper's naive all-String baseline lands near its reported 24.1%.
pub const TYPE_SPECS: &[TypeSpec] = &[
    TypeSpec {
        fqn: "java.lang.String",
        surface: "String",
        init: "$P.trim()",
        uses: &["int n = $V.length();", "$V.toUpperCase();"],
        deps: &[("raw", "String")],
        role: Role::Message,
        weight: 36,
    },
    TypeSpec {
        fqn: "java.lang.Integer",
        surface: "Integer",
        init: "Integer.valueOf($P)",
        uses: &["int v = $V.intValue();"],
        deps: &[("raw", "String")],
        role: Role::Counter,
        weight: 8,
    },
    TypeSpec {
        fqn: "java.util.ArrayList",
        surface: "ArrayList<String>",
        init: "new ArrayList<String>()",
        uses: &["$V.add($P);", "int n = $V.size();"],
        deps: &[("name", "String")],
        role: Role::Collection,
        weight: 10,
    },
    TypeSpec {
        fqn: "java.util.HashMap",
        surface: "HashMap<String, Integer>",
        init: "new HashMap<String, Integer>()",
        uses: &["$V.put($P, 1);", "$V.containsKey($P);"],
        deps: &[("key", "String")],
        role: Role::Config,
        weight: 8,
    },
    TypeSpec {
        fqn: "com.mysql.jdbc.Connection",
        surface: "Connection",
        init: "driver.connect($P)",
        uses: &["$V.prepareStatement(query);", "$V.commit();"],
        deps: &[
            ("jdbcUrl", "String"),
            ("driver", "Driver"),
            ("query", "String"),
        ],
        role: Role::Connection,
        weight: 7,
    },
    TypeSpec {
        fqn: "org.apache.http.Connection",
        surface: "Connection",
        init: "route.open($P)",
        uses: &["$V.flush();", "$V.close();"],
        deps: &[("timeout", "int"), ("route", "Route")],
        role: Role::Connection,
        weight: 7,
    },
    TypeSpec {
        fqn: "java.io.File",
        surface: "File",
        init: "new File($P)",
        uses: &["$V.exists();", "String base = $V.getName();"],
        deps: &[("path", "String")],
        role: Role::FileName,
        weight: 8,
    },
    TypeSpec {
        fqn: "java.io.BufferedReader",
        surface: "BufferedReader",
        init: "new BufferedReader($P)",
        uses: &["String line = $V.readLine();"],
        deps: &[("reader", "Reader")],
        role: Role::Data,
        weight: 6,
    },
    TypeSpec {
        fqn: "java.lang.StringBuilder",
        surface: "StringBuilder",
        init: "new StringBuilder()",
        uses: &["$V.append($P);", "String out = $V.toString();"],
        deps: &[("text", "String")],
        role: Role::Message,
        weight: 7,
    },
    TypeSpec {
        fqn: "java.util.Date",
        surface: "Date",
        init: "new Date()",
        uses: &["long t = $V.getTime();"],
        deps: &[],
        role: Role::Temp,
        weight: 5,
    },
    TypeSpec {
        fqn: "java.net.URL",
        surface: "URL",
        init: "new URL($P)",
        uses: &["$V.openStream();"],
        deps: &[("address", "String")],
        role: Role::Url,
        weight: 6,
    },
    TypeSpec {
        fqn: "org.w3c.dom.Document",
        surface: "Document",
        init: "builder.parse($P)",
        uses: &["$V.getDocumentElement();"],
        deps: &[("xml", "String"), ("builder", "DocumentBuilder")],
        role: Role::Data,
        weight: 4,
    },
    TypeSpec {
        fqn: "org.jsoup.nodes.Document",
        surface: "Document",
        init: "Jsoup.parse($P)",
        uses: &["$V.select(selector);", "$V.title();"],
        deps: &[("html", "String"), ("selector", "String")],
        role: Role::Data,
        weight: 4,
    },
    TypeSpec {
        fqn: "java.lang.Boolean",
        surface: "Boolean",
        init: "Boolean.valueOf($P)",
        uses: &["$V.booleanValue();"],
        deps: &[("raw", "String")],
        role: Role::Flag,
        weight: 6,
    },
    TypeSpec {
        fqn: "java.sql.Date",
        surface: "Date",
        init: "new Date($P)",
        uses: &["$V.toLocalDate();"],
        deps: &[("millis", "long")],
        role: Role::Temp,
        weight: 4,
    },
    TypeSpec {
        fqn: "java.util.logging.Logger",
        surface: "Logger",
        init: "Logger.getLogger($P)",
        uses: &["$V.warning(text);", "$V.fine(text);"],
        deps: &[("tag", "String"), ("text", "String")],
        role: Role::Callback,
        weight: 5,
    },
    TypeSpec {
        fqn: "org.slf4j.Logger",
        surface: "Logger",
        init: "LoggerFactory.getLogger($P)",
        uses: &["$V.warn(text);", "$V.debug(text);"],
        deps: &[("tag", "String"), ("text", "String")],
        role: Role::Callback,
        weight: 5,
    },
    TypeSpec {
        fqn: "java.util.List",
        surface: "List",
        init: "new ArrayList<String>()",
        uses: &["$V.add($P);", "$V.isEmpty();"],
        deps: &[("name", "String")],
        role: Role::Collection,
        weight: 6,
    },
    TypeSpec {
        fqn: "java.awt.List",
        surface: "List",
        init: "new List(4)",
        uses: &["$V.add($P);", "$V.setVisible(true);"],
        deps: &[("name", "String")],
        role: Role::Collection,
        weight: 3,
    },
];

/// Samples a type spec according to the catalogue weights.
pub fn sample_spec<R: Rng>(rng: &mut R) -> &'static TypeSpec {
    let total: u32 = TYPE_SPECS.iter().map(|s| s.weight).sum();
    let mut roll = rng.gen_range(0..total);
    for spec in TYPE_SPECS {
        if roll < spec.weight {
            return spec;
        }
        roll -= spec.weight;
    }
    unreachable!("roll bounded by total weight")
}

/// The share of `java.lang.String` declarations in the catalogue — the
/// accuracy of the naive all-String baseline.
pub fn string_share() -> f64 {
    let total: u32 = TYPE_SPECS.iter().map(|s| s.weight).sum();
    let string = TYPE_SPECS
        .iter()
        .find(|s| s.fqn == "java.lang.String")
        .expect("catalogue contains String")
        .weight;
    f64::from(string) / f64::from(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn catalogue_has_ambiguous_simple_names() {
        let connections: Vec<_> = TYPE_SPECS
            .iter()
            .filter(|s| s.surface == "Connection")
            .collect();
        assert_eq!(connections.len(), 2);
        assert_ne!(connections[0].fqn, connections[1].fqn);
        let documents: Vec<_> = TYPE_SPECS
            .iter()
            .filter(|s| s.surface == "Document")
            .collect();
        assert_eq!(documents.len(), 2);
    }

    #[test]
    fn string_share_matches_paper_ballpark() {
        // The paper's naive baseline scores 24.1%.
        let share = string_share();
        assert!((0.20..0.30).contains(&share), "String share = {share}");
    }

    #[test]
    fn fqns_are_distinct() {
        let mut fqns: Vec<_> = TYPE_SPECS.iter().map(|s| s.fqn).collect();
        fqns.sort_unstable();
        fqns.dedup();
        assert_eq!(fqns.len(), TYPE_SPECS.len());
    }

    #[test]
    fn sampling_covers_the_catalogue() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(sample_spec(&mut rng).fqn);
        }
        assert_eq!(seen.len(), TYPE_SPECS.len());
    }

    #[test]
    fn every_use_mentions_the_variable() {
        for spec in TYPE_SPECS {
            for u in spec.uses {
                assert!(
                    u.contains("$V"),
                    "{}: use `{u}` ignores the variable",
                    spec.fqn
                );
            }
        }
    }
}
