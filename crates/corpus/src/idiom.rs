//! Abstract program idioms.
//!
//! An idiom is a language-independent code pattern — "loop until a flag
//! turns true", "count the elements matching a target" — whose variables
//! have well-defined [`Role`]s. The per-language generators render each
//! idiom into concrete syntax; the naming model supplies the identifiers.
//! Several idioms are lifted straight from the paper's figures (the
//! `done` loop of Fig. 1, the counting method of Fig. 9, the
//! url/request/callback function of Fig. 8, the Popen wrapper of Fig. 7).

use crate::names::{weighted_choice, NamePool, Role};
use rand::Rng;

/// The catalogue of generated code patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdiomKind {
    /// `flag = false; while (!flag) { if (cond()) flag = true; }` (Fig. 1).
    WaitFlag,
    /// Count elements equal to a target (Fig. 9).
    CountMatches,
    /// Sum numeric elements of a collection.
    SumAmounts,
    /// Scan for the first matching element and return it.
    FindElement,
    /// Concatenate a label and a key into a message string.
    BuildMessage,
    /// `request.open('GET', url); request.send(callback)` (Fig. 8).
    HttpSend,
    /// Guarded resource read with an error handler.
    TryRead,
    /// Collect the elements satisfying a predicate.
    FilterCollection,
    /// Index-based loop reading `element = collection[index]` (Fig. 4).
    IndexLoop,
    /// Track the maximum element of a collection.
    MaxLoop,
    /// Read fields off a config object.
    ReadConfig,
    /// Walk a linked structure via a cursor node.
    WalkNodes,
    /// `flag = false; if (config.cond) flag = true; return flag;` — the
    /// short-range twin of [`IdiomKind::WaitFlag`]: identical declaration
    /// and assignment contexts, no loop. Distinguishing the two flags
    /// requires paths long enough to reach (or miss) the `While`.
    GuardFlag,
    /// The paper's Fig. 9 `count` method: a classic indexed for-loop with
    /// a nested if incrementing a counter. Counter and index share
    /// `= 0` initialisers and `++` updates at short range.
    NestedCount,
    /// `attempts = 0; while (!check()) attempts++;` — the counter's
    /// short-range twin: identical declaration and increment statements,
    /// distinguishable from [`IdiomKind::NestedCount`]'s counter only by
    /// the loop structure around it.
    RetryLoop,
    /// `pos = 0; while (buffer[pos] != 0) pos++;` — the loop index's
    /// short-range twin: same subscripting surface, different enclosing
    /// construct.
    ScanBuffer,
}

impl IdiomKind {
    /// Every idiom, for sweeps and exhaustiveness tests.
    pub const ALL: [IdiomKind; 16] = [
        IdiomKind::WaitFlag,
        IdiomKind::CountMatches,
        IdiomKind::SumAmounts,
        IdiomKind::FindElement,
        IdiomKind::BuildMessage,
        IdiomKind::HttpSend,
        IdiomKind::TryRead,
        IdiomKind::FilterCollection,
        IdiomKind::IndexLoop,
        IdiomKind::MaxLoop,
        IdiomKind::ReadConfig,
        IdiomKind::WalkNodes,
        IdiomKind::GuardFlag,
        IdiomKind::NestedCount,
        IdiomKind::RetryLoop,
        IdiomKind::ScanBuffer,
    ];

    /// The named variable slots this idiom binds, with their roles.
    /// Slot order is the declaration order in the rendered code.
    pub fn slots(self) -> &'static [(&'static str, Role)] {
        match self {
            IdiomKind::WaitFlag => &[("flag", Role::Flag)],
            IdiomKind::CountMatches => &[
                ("counter", Role::Counter),
                ("collection", Role::Collection),
                ("element", Role::Element),
                ("target", Role::Target),
            ],
            IdiomKind::SumAmounts => &[
                ("sum", Role::Sum),
                ("collection", Role::Collection),
                ("amount", Role::Amount),
            ],
            IdiomKind::FindElement => &[
                ("result", Role::ResultValue),
                ("collection", Role::Collection),
                ("element", Role::Element),
                ("target", Role::Target),
            ],
            IdiomKind::BuildMessage => &[("message", Role::Message), ("key", Role::KeyName)],
            IdiomKind::HttpSend => &[
                ("url", Role::Url),
                ("request", Role::Request),
                ("callback", Role::Callback),
            ],
            IdiomKind::TryRead => &[
                ("data", Role::Data),
                ("file", Role::FileName),
                ("error", Role::ErrorValue),
            ],
            IdiomKind::FilterCollection => &[
                ("result", Role::ResultValue),
                ("collection", Role::Collection),
                ("element", Role::Element),
            ],
            IdiomKind::IndexLoop => &[
                ("index", Role::LoopIndex),
                ("collection", Role::Collection),
                ("element", Role::Element),
                ("size", Role::Size),
            ],
            IdiomKind::MaxLoop => &[
                ("max", Role::ResultValue),
                ("collection", Role::Collection),
                ("element", Role::Element),
            ],
            IdiomKind::ReadConfig => &[
                ("config", Role::Config),
                ("size", Role::Size),
                ("url", Role::Url),
            ],
            IdiomKind::WalkNodes => &[("node", Role::Node), ("counter", Role::Counter)],
            IdiomKind::GuardFlag => &[("flag", Role::GuardFlag), ("config", Role::Config)],
            IdiomKind::NestedCount => &[
                ("counter", Role::Counter),
                ("index", Role::LoopIndex),
                ("collection", Role::Collection),
                ("target", Role::Target),
            ],
            IdiomKind::RetryLoop => &[("attempts", Role::Attempts)],
            IdiomKind::ScanBuffer => &[("cursor", Role::Cursor), ("collection", Role::Collection)],
        }
    }

    /// The slots rendered as function parameters (the rest are locals).
    pub fn param_slots(self) -> &'static [&'static str] {
        match self {
            IdiomKind::WaitFlag => &[],
            IdiomKind::CountMatches => &["collection", "target"],
            IdiomKind::SumAmounts => &["collection"],
            IdiomKind::FindElement => &["collection", "target"],
            IdiomKind::BuildMessage => &["key"],
            IdiomKind::HttpSend => &["url", "request", "callback"],
            IdiomKind::TryRead => &["file"],
            IdiomKind::FilterCollection => &["collection"],
            IdiomKind::IndexLoop => &["collection"],
            IdiomKind::MaxLoop => &["collection"],
            IdiomKind::ReadConfig => &["config"],
            IdiomKind::WalkNodes => &["node"],
            IdiomKind::GuardFlag => &["config"],
            IdiomKind::NestedCount => &["collection", "target"],
            IdiomKind::RetryLoop => &[],
            IdiomKind::ScanBuffer => &["collection"],
        }
    }

    /// The weighted method-name distribution for a function whose primary
    /// behaviour is this idiom.
    pub fn method_names(self) -> &'static [(&'static str, u32)] {
        match self {
            IdiomKind::WaitFlag => &[
                ("waitUntilDone", 58),
                ("run", 14),
                ("poll", 12),
                ("process", 9),
                ("execute", 7),
            ],
            IdiomKind::CountMatches => &[
                ("count", 60),
                ("countMatches", 14),
                ("countItems", 10),
                ("tally", 8),
                ("getCount", 8),
            ],
            IdiomKind::SumAmounts => &[
                ("sum", 60),
                ("total", 12),
                ("sumValues", 12),
                ("computeTotal", 8),
                ("accumulate", 8),
            ],
            IdiomKind::FindElement => &[
                ("find", 60),
                ("search", 14),
                ("lookup", 10),
                ("findItem", 8),
                ("locate", 8),
            ],
            IdiomKind::BuildMessage => &[
                ("format", 58),
                ("buildMessage", 14),
                ("describe", 12),
                ("render", 8),
                ("toText", 8),
            ],
            IdiomKind::HttpSend => &[
                ("send", 60),
                ("fetch", 14),
                ("request", 10),
                ("get", 8),
                ("post", 8),
            ],
            IdiomKind::TryRead => &[
                ("load", 58),
                ("read", 16),
                ("readFile", 10),
                ("loadData", 8),
                ("open", 8),
            ],
            IdiomKind::FilterCollection => &[
                ("filter", 62),
                ("select", 12),
                ("collect", 10),
                ("pick", 8),
                ("filterItems", 8),
            ],
            IdiomKind::IndexLoop => &[
                ("each", 58),
                ("forEach", 14),
                ("visit", 12),
                ("apply", 8),
                ("scan", 8),
            ],
            IdiomKind::MaxLoop => &[
                ("max", 60),
                ("findMax", 14),
                ("largest", 10),
                ("maximum", 8),
                ("best", 8),
            ],
            IdiomKind::ReadConfig => &[
                ("configure", 58),
                ("setup", 14),
                ("init", 12),
                ("applyConfig", 8),
                ("prepare", 8),
            ],
            IdiomKind::WalkNodes => &[
                ("walk", 60),
                ("traverse", 14),
                ("visitAll", 10),
                ("follow", 8),
                ("chase", 8),
            ],
            IdiomKind::GuardFlag => &[
                ("isEnabled", 58),
                ("checkState", 14),
                ("canRun", 12),
                ("shouldRun", 8),
                ("guard", 8),
            ],
            IdiomKind::NestedCount => &[
                ("count", 60),
                ("countMatches", 14),
                ("countItems", 10),
                ("tally", 8),
                ("getCount", 8),
            ],
            IdiomKind::RetryLoop => &[
                ("retry", 56),
                ("waitFor", 16),
                ("spin", 12),
                ("attempt", 8),
                ("keepTrying", 8),
            ],
            IdiomKind::ScanBuffer => &[
                ("scan", 56),
                ("seek", 16),
                ("skipTo", 12),
                ("advance", 8),
                ("consume", 8),
            ],
        }
    }

    /// Samples a method name for a function built around this idiom.
    pub fn sample_method_name<R: Rng>(self, rng: &mut R) -> &'static str {
        weighted_choice(self.method_names(), rng)
    }
}

/// One concrete instantiation of an idiom: the chosen name per slot.
#[derive(Debug, Clone)]
pub struct IdiomInstance {
    /// Which pattern this is.
    pub kind: IdiomKind,
    /// `(slot, chosen name, role)` in slot order. The role recorded is the
    /// slot's true role even when name noise picked an off-role name.
    pub bindings: Vec<(&'static str, String, Role)>,
}

impl IdiomInstance {
    /// Instantiates `kind`, drawing a name for each slot from `pool`.
    ///
    /// With probability `name_noise` per slot, the name is drawn from a
    /// random *other* role instead — modelling the idiosyncratic naming
    /// that caps real-world accuracy well below 100%.
    pub fn generate<R: Rng>(
        kind: IdiomKind,
        pool: &mut NamePool,
        name_noise: f64,
        rng: &mut R,
    ) -> Self {
        let bindings = kind
            .slots()
            .iter()
            .map(|&(slot, role)| {
                let effective = if rng.gen::<f64>() < name_noise {
                    Role::ALL[rng.gen_range(0..Role::ALL.len())]
                } else {
                    role
                };
                (slot, pool.draw(effective, rng), role)
            })
            .collect();
        IdiomInstance { kind, bindings }
    }

    /// The chosen name of `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the idiom has no such slot.
    pub fn name(&self, slot: &str) -> &str {
        &self
            .bindings
            .iter()
            .find(|(s, _, _)| *s == slot)
            .unwrap_or_else(|| panic!("{:?} has no slot {slot}", self.kind))
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn all_idioms_have_slots_and_method_names() {
        for kind in IdiomKind::ALL {
            assert!(!kind.slots().is_empty(), "{kind:?} has no slots");
            assert!(!kind.method_names().is_empty());
        }
    }

    #[test]
    fn slot_names_are_unique_per_idiom() {
        for kind in IdiomKind::ALL {
            let mut names: Vec<_> = kind.slots().iter().map(|&(s, _)| s).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), kind.slots().len(), "{kind:?} repeats a slot");
        }
    }

    #[test]
    fn noiseless_instances_draw_from_the_slot_role() {
        let mut rng = SmallRng::seed_from_u64(11);
        for kind in IdiomKind::ALL {
            let mut pool = NamePool::new();
            let inst = IdiomInstance::generate(kind, &mut pool, 0.0, &mut rng);
            for (slot, name, role) in &inst.bindings {
                // Either a role name or a numbered collision fallback.
                let base: String = name
                    .trim_end_matches(|c: char| c.is_ascii_digit())
                    .to_owned();
                assert!(
                    role.admits(&base),
                    "{kind:?}.{slot} drew `{name}` outside {role:?}"
                );
            }
        }
    }

    #[test]
    fn name_lookup_by_slot() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut pool = NamePool::new();
        let inst = IdiomInstance::generate(IdiomKind::WaitFlag, &mut pool, 0.0, &mut rng);
        assert!(Role::Flag.admits(inst.name("flag")));
    }

    #[test]
    #[should_panic(expected = "has no slot")]
    fn unknown_slot_panics() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut pool = NamePool::new();
        let inst = IdiomInstance::generate(IdiomKind::WaitFlag, &mut pool, 0.0, &mut rng);
        let _ = inst.name("nope");
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let a = {
            let mut rng = SmallRng::seed_from_u64(9);
            let mut pool = NamePool::new();
            IdiomInstance::generate(IdiomKind::CountMatches, &mut pool, 0.2, &mut rng).bindings
        };
        let b = {
            let mut rng = SmallRng::seed_from_u64(9);
            let mut pool = NamePool::new();
            IdiomInstance::generate(IdiomKind::CountMatches, &mut pool, 0.2, &mut rng).bindings
        };
        assert_eq!(
            a.iter().map(|(_, n, _)| n.clone()).collect::<Vec<_>>(),
            b.iter().map(|(_, n, _)| n.clone()).collect::<Vec<_>>()
        );
    }
}
