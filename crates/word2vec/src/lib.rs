//! Skip-gram with negative sampling over arbitrary (word, context) pairs.
//!
//! This is the second learner the paper plugs AST paths into (§3.2): the
//! SGNS objective of Mikolov et al., generalised to **arbitrary
//! contexts** following Levy & Goldberg (2014) — a context here is
//! whatever the caller interned, typically an abstracted path-context.
//! Prediction follows the paper's Eq. 4: for an unknown element with
//! observed context set `C`, choose `argmax_w Σ_{c∈C} w·c`, *without*
//! using the original word (unlike the lexical-substitution model it
//! adapts).
//!
//! # Example
//!
//! ```
//! use pigeon_word2vec::{train, SgnsConfig};
//!
//! // Two words with disjoint context distributions.
//! let pairs: Vec<(u32, u32)> = (0..200)
//!     .map(|i| if i % 2 == 0 { (0, i % 4) } else { (1, 4 + i % 4) })
//!     .collect();
//! let model = train(&pairs, 2, 8, &SgnsConfig { dim: 16, ..SgnsConfig::default() });
//! let top = model.predict(&[0, 2], None);
//! assert_eq!(top[0].0, 0);
//! ```

use pigeon_telemetry as telemetry;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Training hyper-parameters for [`train`].
#[derive(Debug, Clone, Copy)]
pub struct SgnsConfig {
    /// Embedding dimensionality `d`.
    pub dim: usize,
    /// Passes over the pair list.
    pub epochs: usize,
    /// Initial learning rate, decayed linearly to 10% over training.
    pub learning_rate: f32,
    /// Negative samples per positive pair (`k` in SGNS).
    pub negative: usize,
    /// RNG seed for initialisation, shuffling and negative sampling.
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        SgnsConfig {
            dim: 64,
            epochs: 10,
            learning_rate: 0.05,
            negative: 5,
            seed: 0x5165_0001,
        }
    }
}

/// A trained embedding table: one vector per word, one per context.
#[derive(Debug, Clone)]
pub struct SgnsModel {
    dim: usize,
    num_words: usize,
    num_contexts: usize,
    /// Row-major `num_words × dim`.
    word_vecs: Vec<f32>,
    /// Row-major `num_contexts × dim`.
    ctx_vecs: Vec<f32>,
    /// Training frequency of each word (prediction tie-breaking).
    word_counts: Vec<u32>,
    /// Euclidean norm of each word vector, clamped to ≥ 1e-12.
    /// Derived from `word_vecs` — rebuilt on deserialisation, never stored.
    word_norms: Vec<f32>,
}

/// Per-word Euclidean norms of a row-major `num_words × dim` table.
fn compute_word_norms(word_vecs: &[f32], dim: usize) -> Vec<f32> {
    word_vecs
        .chunks_exact(dim.max(1))
        .map(|v| v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12))
        .collect()
}

// Hand-written (the vendored serde shim has no derive macro).
impl Serialize for SgnsModel {
    fn to_value(&self) -> serde_json::Value {
        let mut map = serde_json::Map::new();
        map.insert("dim".into(), self.dim.to_value());
        map.insert("num_words".into(), self.num_words.to_value());
        map.insert("num_contexts".into(), self.num_contexts.to_value());
        map.insert("word_vecs".into(), self.word_vecs.to_value());
        map.insert("ctx_vecs".into(), self.ctx_vecs.to_value());
        map.insert("word_counts".into(), self.word_counts.to_value());
        serde_json::Value::Object(map)
    }
}

impl Deserialize for SgnsModel {
    fn from_value(value: &serde_json::Value) -> Result<Self, serde::Error> {
        fn field<T: Deserialize>(value: &serde_json::Value, key: &str) -> Result<T, serde::Error> {
            T::from_value(
                value
                    .get(key)
                    .ok_or_else(|| serde::Error::custom(format!("missing field `{key}`")))?,
            )
        }
        let dim: usize = field(value, "dim")?;
        let word_vecs: Vec<f32> = field(value, "word_vecs")?;
        let word_norms = compute_word_norms(&word_vecs, dim);
        Ok(SgnsModel {
            dim,
            num_words: field(value, "num_words")?,
            num_contexts: field(value, "num_contexts")?,
            word_vecs,
            ctx_vecs: field(value, "ctx_vecs")?,
            word_counts: field(value, "word_counts")?,
            word_norms,
        })
    }
}

/// Trains SGNS embeddings on `(word, context)` id pairs.
///
/// # Panics
///
/// Panics if a pair references a word `>= num_words` or context
/// `>= num_contexts`, or if `pairs` is empty.
pub fn train(
    pairs: &[(u32, u32)],
    num_words: usize,
    num_contexts: usize,
    cfg: &SgnsConfig,
) -> SgnsModel {
    let _span = telemetry::span("sgns_train");
    telemetry::count("pigeon_sgns_pairs_total", pairs.len() as u64);
    assert!(!pairs.is_empty(), "training requires at least one pair");
    let mut word_counts = vec![0u32; num_words];
    let mut ctx_counts = vec![0u64; num_contexts];
    for &(w, c) in pairs {
        assert!((w as usize) < num_words, "word id {w} out of range");
        assert!((c as usize) < num_contexts, "context id {c} out of range");
        word_counts[w as usize] += 1;
        ctx_counts[c as usize] += 1;
    }

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let dim = cfg.dim;
    // word2vec-style init: words uniform in ±0.5/d, contexts zero.
    let mut word_vecs: Vec<f32> = (0..num_words * dim)
        .map(|_| (rng.gen::<f32>() - 0.5) / dim as f32)
        .collect();
    let mut ctx_vecs = vec![0.0f32; num_contexts * dim];

    let noise = NoiseTable::new(&ctx_counts);
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    let total_steps = (pairs.len() * cfg.epochs) as f32;
    let mut step = 0f32;

    for _ in 0..cfg.epochs {
        let _epoch_span = telemetry::span("sgns_epoch");
        order.shuffle(&mut rng);
        for &i in &order {
            let (w, c) = pairs[i];
            let lr = cfg.learning_rate * (1.0 - 0.9 * step / total_steps);
            step += 1.0;
            sgns_update(
                &mut word_vecs,
                &mut ctx_vecs,
                dim,
                w as usize,
                c as usize,
                1.0,
                lr,
            );
            for _ in 0..cfg.negative {
                let neg = noise.sample(&mut rng);
                if neg != c as usize {
                    sgns_update(&mut word_vecs, &mut ctx_vecs, dim, w as usize, neg, 0.0, lr);
                }
            }
        }
    }

    let word_norms = compute_word_norms(&word_vecs, dim);
    SgnsModel {
        dim,
        num_words,
        num_contexts,
        word_vecs,
        ctx_vecs,
        word_counts,
        word_norms,
    }
}

/// One gradient step on `σ(w·c) → target`.
fn sgns_update(
    word_vecs: &mut [f32],
    ctx_vecs: &mut [f32],
    dim: usize,
    w: usize,
    c: usize,
    target: f32,
    lr: f32,
) {
    let wv = &word_vecs[w * dim..(w + 1) * dim];
    let cv = &ctx_vecs[c * dim..(c + 1) * dim];
    let dot: f32 = wv.iter().zip(cv).map(|(a, b)| a * b).sum();
    let g = (target - sigmoid(dot)) * lr;
    for k in 0..dim {
        let wk = word_vecs[w * dim + k];
        let ck = ctx_vecs[c * dim + k];
        word_vecs[w * dim + k] = wk + g * ck;
        ctx_vecs[c * dim + k] = ck + g * wk;
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Unigram^0.75 negative-sampling table (Mikolov et al.).
struct NoiseTable {
    table: Vec<u32>,
}

impl NoiseTable {
    fn new(counts: &[u64]) -> Self {
        const TABLE_SIZE: usize = 1 << 17;
        let pow: Vec<f64> = counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
        let total: f64 = pow.iter().sum();
        let mut table = Vec::with_capacity(TABLE_SIZE);
        if total <= 0.0 {
            table.push(0);
        } else {
            let mut cum = 0.0;
            let mut idx = 0usize;
            for slot in 0..TABLE_SIZE {
                let threshold = (slot as f64 + 0.5) / TABLE_SIZE as f64;
                while idx + 1 < counts.len() && cum + pow[idx] / total < threshold {
                    cum += pow[idx] / total;
                    idx += 1;
                }
                table.push(idx as u32);
            }
        }
        NoiseTable { table }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        self.table[rng.gen_range(0..self.table.len())] as usize
    }
}

impl SgnsModel {
    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of words in the embedding table.
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// Number of contexts in the embedding table.
    pub fn num_contexts(&self) -> usize {
        self.num_contexts
    }

    /// The full row-major `num_words × dim` word table, for audit
    /// tooling that scans every coefficient.
    pub fn word_table(&self) -> &[f32] {
        &self.word_vecs
    }

    /// The full row-major `num_contexts × dim` context table.
    pub fn ctx_table(&self) -> &[f32] {
        &self.ctx_vecs
    }

    /// The per-word training-frequency table.
    pub fn word_count_table(&self) -> &[u32] {
        &self.word_counts
    }

    /// The word vector for `word`.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn word_vec(&self, word: u32) -> &[f32] {
        &self.word_vecs[word as usize * self.dim..(word as usize + 1) * self.dim]
    }

    /// The context vector for `context`.
    ///
    /// # Panics
    ///
    /// Panics if `context` is out of range.
    pub fn ctx_vec(&self, context: u32) -> &[f32] {
        &self.ctx_vecs[context as usize * self.dim..(context as usize + 1) * self.dim]
    }

    /// Summed context vector and the scoring closure's input for Eq. 4.
    fn context_sum(&self, contexts: &[u32]) -> Vec<f32> {
        let mut ctx_sum = vec![0.0f32; self.dim];
        for &c in contexts {
            if (c as usize) < self.num_contexts {
                for (k, s) in ctx_sum.iter_mut().enumerate() {
                    *s += self.ctx_vecs[c as usize * self.dim + k];
                }
            }
        }
        ctx_sum
    }

    /// Eq. 4 score of `word` against a precomputed context sum.
    fn eq4_score(&self, w: u32, ctx_sum: &[f32]) -> f32 {
        let wv = self.word_vec(w);
        wv.iter().zip(ctx_sum).map(|(a, b)| a * b).sum::<f32>()
            + 1e-6 * (self.word_counts[w as usize] as f32).ln_1p()
    }

    /// Eq. 4 of the paper: ranks candidate words by `Σ_{c∈C} w·c`.
    ///
    /// Unseen context ids (`>= num_contexts`) are skipped — the test-time
    /// analogue of an out-of-vocabulary feature. `candidates` restricts
    /// the argmax; `None` ranks the entire word vocabulary. Returns the
    /// *full* ranking; when only the head is needed, [`predict_top_k`]
    /// avoids sorting the whole vocabulary.
    ///
    /// [`predict_top_k`]: SgnsModel::predict_top_k
    pub fn predict(&self, contexts: &[u32], candidates: Option<&[u32]>) -> Vec<(u32, f32)> {
        let ctx_sum = self.context_sum(contexts);
        let score = |w: u32| self.eq4_score(w, &ctx_sum);
        let mut scored: Vec<(u32, f32)> = match candidates {
            Some(cands) => cands.iter().map(|&w| (w, score(w))).collect(),
            None => (0..self.num_words as u32).map(|w| (w, score(w))).collect(),
        };
        scored.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        scored
    }

    /// The top `k` rows of [`predict`]'s ranking, without sorting the
    /// whole vocabulary: a bounded min-heap keeps the best `k` seen so
    /// far, `O(n log k)` instead of `O(n log n)`. Identical output
    /// (same scores, same `(score desc, id asc)` tie-break) to
    /// `predict(..)[..k]`.
    ///
    /// [`predict`]: SgnsModel::predict
    pub fn predict_top_k(
        &self,
        contexts: &[u32],
        candidates: Option<&[u32]>,
        k: usize,
    ) -> Vec<(u32, f32)> {
        let ctx_sum = self.context_sum(contexts);
        let mut heap: BinaryHeap<WorstFirst> = BinaryHeap::with_capacity(k + 1);
        let mut push = |w: u32| {
            let entry = WorstFirst(w, self.eq4_score(w, &ctx_sum));
            if heap.len() < k {
                heap.push(entry);
            } else if let Some(worst) = heap.peek() {
                // `worst > entry` in worst-first order ⇔ entry ranks better.
                if *worst > entry {
                    heap.pop();
                    heap.push(entry);
                }
            }
        };
        match candidates {
            Some(cands) => cands.iter().for_each(|&w| push(w)),
            None => (0..self.num_words as u32).for_each(push),
        }
        heap.into_sorted_vec()
            .into_iter()
            .map(|WorstFirst(w, s)| (w, s))
            .collect()
    }

    /// The `k` nearest words to `word` by cosine similarity of word
    /// vectors — the source of the paper's Table 4b synonym clusters.
    /// Uses the norms precomputed at train/load time.
    pub fn neighbours(&self, word: u32, k: usize) -> Vec<(u32, f32)> {
        let wv = self.word_vec(word).to_vec();
        let wn = self.word_norms[word as usize];
        let mut scored: Vec<(u32, f32)> = (0..self.num_words as u32)
            .filter(|&o| o != word)
            .map(|o| {
                let ov = self.word_vec(o);
                let dot: f32 = ov.iter().zip(&wv).map(|(a, b)| a * b).sum();
                (o, dot / (wn * self.word_norms[o as usize]))
            })
            .collect();
        scored.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        scored.truncate(k);
        scored
    }
}

/// Heap entry ordered so the heap's maximum is the *worst*-ranked row:
/// lower score is "greater", and on score ties a higher word id is
/// "greater" (ids ascend within a score in the final ranking).
#[derive(PartialEq)]
struct WorstFirst(u32, f32);

impl Eq for WorstFirst {}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        other.1.total_cmp(&self.1).then(self.0.cmp(&other.0))
    }
}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world of `n_words` words; word w emits contexts from its own
    /// band of 4 context ids, with a shared noise context.
    fn banded_pairs(n_words: u32, per_word: usize, seed: u64) -> Vec<(u32, u32)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pairs = Vec::new();
        for w in 0..n_words {
            for _ in 0..per_word {
                let c = if rng.gen_bool(0.9) {
                    w * 4 + rng.gen_range(0..4)
                } else {
                    n_words * 4 // shared noise context
                };
                pairs.push((w, c));
            }
        }
        pairs
    }

    fn cfg() -> SgnsConfig {
        SgnsConfig {
            dim: 32,
            epochs: 8,
            ..SgnsConfig::default()
        }
    }

    #[test]
    fn prediction_recovers_band_owner() {
        let n_words = 8;
        let pairs = banded_pairs(n_words, 150, 1);
        let model = train(&pairs, n_words as usize, (n_words * 4 + 1) as usize, &cfg());
        for w in 0..n_words {
            let contexts = [w * 4, w * 4 + 1, w * 4 + 2];
            let top = model.predict(&contexts, None);
            assert_eq!(top[0].0, w, "word {w} not recovered: {:?}", &top[..3]);
        }
    }

    #[test]
    fn candidate_restriction_is_respected() {
        let pairs = banded_pairs(4, 100, 2);
        let model = train(&pairs, 4, 17, &cfg());
        let top = model.predict(&[0, 1], Some(&[2, 3]));
        assert!(top.iter().all(|&(w, _)| w == 2 || w == 3));
    }

    #[test]
    fn words_with_shared_contexts_are_neighbours() {
        // Words 0 and 1 share a band; words 2 and 3 share another.
        let mut rng = SmallRng::seed_from_u64(3);
        let mut pairs = Vec::new();
        for _ in 0..400 {
            let (w, base) = if rng.gen_bool(0.5) {
                (rng.gen_range(0..2), 0)
            } else {
                (rng.gen_range(2..4), 4)
            };
            pairs.push((w, base + rng.gen_range(0..4u32)));
        }
        let model = train(&pairs, 4, 8, &cfg());
        let n0 = model.neighbours(0, 1);
        assert_eq!(n0[0].0, 1, "0's nearest should be its twin 1: {n0:?}");
        let n2 = model.neighbours(2, 1);
        assert_eq!(n2[0].0, 3);
    }

    #[test]
    fn unseen_contexts_are_ignored_not_fatal() {
        let pairs = banded_pairs(3, 50, 4);
        let model = train(&pairs, 3, 13, &cfg());
        let with_unseen = model.predict(&[0, 9999], None);
        let without = model.predict(&[0], None);
        assert_eq!(with_unseen[0].0, without[0].0);
    }

    #[test]
    fn training_is_deterministic_under_a_seed() {
        let pairs = banded_pairs(4, 80, 5);
        let a = train(&pairs, 4, 17, &cfg());
        let b = train(&pairs, 4, 17, &cfg());
        assert_eq!(a.word_vecs, b.word_vecs);
    }

    #[test]
    fn serde_round_trip() {
        let pairs = banded_pairs(3, 60, 6);
        let model = train(&pairs, 3, 13, &cfg());
        let json = serde_json::to_string(&model).unwrap();
        let restored: SgnsModel = serde_json::from_str(&json).unwrap();
        assert_eq!(model.predict(&[1], None), restored.predict(&[1], None));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_word_panics() {
        let _ = train(&[(5, 0)], 2, 4, &cfg());
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn empty_training_panics() {
        let _ = train(&[], 2, 4, &cfg());
    }

    #[test]
    fn top_k_matches_the_full_ranking_head() {
        let n_words = 8;
        let pairs = banded_pairs(n_words, 120, 9);
        let model = train(&pairs, n_words as usize, (n_words * 4 + 1) as usize, &cfg());
        for contexts in [vec![0u32, 1, 2], vec![5, 6], vec![12]] {
            let full = model.predict(&contexts, None);
            for k in [0usize, 1, 3, 8, 20] {
                let top = model.predict_top_k(&contexts, None, k);
                assert_eq!(top, full[..k.min(full.len())].to_vec(), "k={k}");
            }
            let cands = [1u32, 4, 6];
            let full_c = model.predict(&contexts, Some(&cands));
            assert_eq!(model.predict_top_k(&contexts, Some(&cands), 2), full_c[..2]);
        }
    }

    #[test]
    fn deserialised_models_keep_their_neighbour_ranking() {
        let pairs = banded_pairs(4, 80, 10);
        let model = train(&pairs, 4, 17, &cfg());
        let json = serde_json::to_string(&model).unwrap();
        let restored: SgnsModel = serde_json::from_str(&json).unwrap();
        assert_eq!(model.neighbours(0, 3), restored.neighbours(0, 3));
    }

    #[test]
    fn noise_table_prefers_frequent_contexts() {
        let counts = vec![1000u64, 1, 1, 1];
        let table = NoiseTable::new(&counts);
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..1000).filter(|_| table.sample(&mut rng) == 0).count();
        assert!(hits > 700, "frequent context sampled only {hits}/1000");
    }
}
