//! Mutation and property tests for the audit layer.
//!
//! The unit tests inside each module prove the happy path; these tests
//! prove the *detectors*: every check must fire when its violation is
//! deliberately seeded (a corrupted model file, a poisoned split), and
//! the scope resolver must agree with the extraction-side element
//! grouping on every corpus the generator can produce.

use pigeon_analysis::{audit_sources, check_split, cross_check, AuditConfig, Severity, SourceUnit};
use pigeon_corpus::{generate, CorpusConfig, Language};
use pigeon_crf::CrfModel;
use pigeon_word2vec::SgnsModel;
use proptest::prelude::*;

/// A minimal healthy CRF model file: one pair weight, one unary weight,
/// one candidate row, a live label-count table and a global fallback.
fn crf_json(weight: &str, max_candidates: usize, global: &str) -> String {
    format!(
        concat!(
            "{{\"pair_weights\":[[0,0,1,{w}]],",
            "\"unary_weights\":[[1,0,0.5]],",
            "\"label_counts\":[3,2],",
            "\"candidates\":[[0,0,0,[[1,2]]]],",
            "\"global_candidates\":{g},",
            "\"max_candidates\":{m},",
            "\"max_passes\":4}}"
        ),
        w = weight,
        m = max_candidates,
        g = global,
    )
}

fn lint_crf_codes(json: &str) -> Vec<(String, Severity)> {
    let model = CrfModel::from_json(json).expect("fixture must deserialize");
    pigeon_analysis::lint_crf("model.json", &model, 2, 2)
        .into_iter()
        .map(|d| (d.code.to_string(), d.severity))
        .collect()
}

#[test]
fn healthy_crf_fixture_lints_clean() {
    let codes = lint_crf_codes(&crf_json("1.25", 8, "[0,1]"));
    assert!(
        codes.iter().all(|(_, sev)| *sev < Severity::Warning),
        "{codes:?}"
    );
}

#[test]
fn nonfinite_crf_weight_is_an_error() {
    // The JSON number 1e999 overflows f64 to +inf on parse — exactly
    // how a non-finite weight sneaks through a textual model file.
    let codes = lint_crf_codes(&crf_json("1e999", 8, "[0,1]"));
    assert!(
        codes.contains(&("model-nonfinite-weight".to_string(), Severity::Error)),
        "{codes:?}"
    );
}

#[test]
fn empty_candidate_tables_are_flagged() {
    let codes = lint_crf_codes(&crf_json("1.25", 0, "[]"));
    assert!(
        codes.contains(&("model-empty-candidates".to_string(), Severity::Error)),
        "{codes:?}"
    );
}

#[test]
fn out_of_range_ids_are_an_error() {
    // Label id 7 against a 2-entry label vocabulary.
    let json = crf_json("1.25", 8, "[0,7]");
    let model = CrfModel::from_json(&json).unwrap();
    let codes: Vec<_> = pigeon_analysis::lint_crf("model.json", &model, 2, 2)
        .into_iter()
        .map(|d| (d.code.to_string(), d.severity))
        .collect();
    assert!(
        codes.contains(&("model-id-range".to_string(), Severity::Error)),
        "{codes:?}"
    );
}

fn sgns_from_json(json: &str) -> SgnsModel {
    serde::Deserialize::from_value(&serde_json::from_str::<serde_json::Value>(json).unwrap())
        .expect("fixture must deserialize")
}

#[test]
fn tampered_sgns_table_shape_is_an_error() {
    // Claims 2 words × 2 dims but ships 3 floats in the word table.
    let model = sgns_from_json(
        "{\"dim\":2,\"num_words\":2,\"num_contexts\":1,\
         \"word_vecs\":[0.1,0.2,0.3],\"ctx_vecs\":[0.5,0.5],\
         \"word_counts\":[4,1]}",
    );
    let codes: Vec<_> = pigeon_analysis::lint_sgns("w2v.json", &model)
        .into_iter()
        .map(|d| d.code.to_string())
        .collect();
    assert!(
        codes.contains(&"model-table-shape".to_string()),
        "{codes:?}"
    );
}

#[test]
fn nonfinite_sgns_entry_is_an_error() {
    let model = sgns_from_json(
        "{\"dim\":2,\"num_words\":1,\"num_contexts\":1,\
         \"word_vecs\":[0.1,1e999],\"ctx_vecs\":[0.5,0.5],\
         \"word_counts\":[4]}",
    );
    let diags = pigeon_analysis::lint_sgns("w2v.json", &model);
    assert!(
        diags
            .iter()
            .any(|d| d.code == "model-nonfinite-weight" && d.severity == Severity::Error),
        "{diags:?}"
    );
}

#[test]
fn duplicated_split_is_refused() {
    // The same fingerprint appears in train and test: hard error.
    let train = vec![("train/a.js".to_string(), 0xdead_beef_u64)];
    let test = vec![
        ("test/z.js".to_string(), 0xdead_beef_u64),
        ("test/y.js".to_string(), 0x1234_u64),
    ];
    let diags = check_split("train", &train, "test", &test);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, "split-leak");
    assert_eq!(diags[0].severity, Severity::Error);

    let clean = check_split("train", &train, "test", &test[1..]);
    assert!(clean.is_empty());
}

#[test]
fn corrupted_source_corpus_is_denied() {
    // One malformed unit inside an otherwise healthy corpus must
    // surface as an error, not silently vanish from the report.
    let mut units: Vec<SourceUnit> = (0..4)
        .map(|i| SourceUnit {
            name: format!("ok{i}.py"),
            source: format!("def f{i}(x):\n    return x + {i}\n"),
        })
        .collect();
    units.push(SourceUnit {
        name: "broken.py".to_string(),
        source: "def (((:".to_string(),
    });
    let report = audit_sources(Language::Python, &units, &AuditConfig::default());
    assert!(report.denied_count(Severity::Error) > 0);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == "parse-error" && d.unit == "broken.py"));
}

fn config_strategy() -> impl Strategy<Value = CorpusConfig> {
    (1usize..6, 1usize..4, 0.0f64..0.4, any::<u64>()).prop_map(|(files, max_fns, noise, seed)| {
        CorpusConfig {
            files,
            min_functions: 1,
            max_functions: max_fns,
            name_noise: noise,
            seed,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The independent resolver in `pigeon-analysis` must reconstruct
    /// exactly the element grouping `pigeon-eval` extracts, on every
    /// corpus the generator can produce, in all four languages.
    #[test]
    fn resolver_agrees_with_element_classification(cfg in config_strategy()) {
        for language in Language::ALL {
            let corpus = generate(language, &cfg);
            for (i, doc) in corpus.docs.iter().enumerate() {
                let ast = language
                    .parse(&doc.source)
                    .map_err(|e| TestCaseError::fail(format!("{language}: {e}")))?;
                let elements = pigeon_eval::classify_elements(language, &ast);
                let diags = cross_check(language, &format!("doc{i}"), &ast, &elements);
                let errors: Vec<_> = diags
                    .iter()
                    .filter(|d| d.severity >= Severity::Error)
                    .collect();
                prop_assert!(
                    errors.is_empty(),
                    "{language}: resolver disagrees: {errors:?}\n{}",
                    doc.source
                );
            }
        }
    }

    /// Whole-corpus audits stay clean at `--deny warning` for any
    /// generator configuration — the CI gate can never flake.
    #[test]
    fn generated_corpora_always_audit_clean(cfg in config_strategy()) {
        for language in [Language::JavaScript, Language::Java] {
            let corpus = generate(language, &cfg);
            let units: Vec<SourceUnit> = corpus
                .docs
                .iter()
                .enumerate()
                .map(|(i, doc)| SourceUnit {
                    name: format!("doc{i:04}"),
                    source: doc.source.clone(),
                })
                .collect();
            let report = audit_sources(language, &units, &AuditConfig::default());
            prop_assert_eq!(
                report.denied_count(Severity::Warning),
                0,
                "{}: {}",
                language,
                report.render_text()
            );
        }
    }
}
