//! An independent lexical scope and binding resolver, cross-checked
//! against the evaluation layer's element classification.
//!
//! The resolver builds an explicit scope tree in one preorder pass
//! (every function-level node opens a scope; everything else inherits
//! its parent's), collects declaration sites per scope, and groups each
//! identifier occurrence with the binding of its exact enclosing scope —
//! names never declared as variables group file-wide, mirroring the
//! Nice2Predict protocol the paper evaluates under. This is a second,
//! structurally different implementation of the grouping contract in
//! `pigeon_eval::classify_elements`; [`cross_check`] diffs the two and
//! any disagreement is a **hard error**, because a silent divergence
//! between what the resolver binds and what the learner trains on is
//! exactly the class of bug that corrupts reported accuracy.

use crate::diag::{Diagnostic, Severity};
use pigeon_ast::{Ast, NodeId};
use pigeon_corpus::Language;
use pigeon_eval::{Element, ElementClass};
use std::collections::{BTreeMap, BTreeSet};

/// The scope tree of one AST: a root scope plus one scope per
/// function-level node, each knowing its lexical parent.
#[derive(Debug)]
pub struct ScopeTree {
    /// For every node (by preorder index), the index into `scopes` of
    /// the scope that governs it.
    governing: Vec<usize>,
    /// Scopes in preorder of their opening node; index 0 is the root.
    scopes: Vec<Scope>,
}

/// One lexical scope.
#[derive(Debug)]
pub struct Scope {
    /// The node that opens this scope (root, or a function node).
    pub node: NodeId,
    /// Index of the enclosing scope in the tree; `None` for the root.
    pub parent: Option<usize>,
}

/// Function-level kinds, per frontend: the units that open scopes.
pub(crate) fn scope_opening_kinds(language: Language) -> &'static [&'static str] {
    match language {
        Language::JavaScript => &["Arrow", "Defun", "Function"],
        Language::Java => &["ConstructorDecl", "MethodDecl"],
        Language::Python => &["FunctionDef", "Lambda"],
        Language::CSharp => &["ConstructorDeclaration", "MethodDeclaration"],
    }
}

/// Whether `leaf` declares a local variable, parameter or catch binding.
pub(crate) fn declares_variable(language: Language, ast: &Ast, leaf: NodeId) -> bool {
    let kind = ast.kind(leaf).as_str();
    match language {
        Language::JavaScript => matches!(kind, "SymbolCatch" | "SymbolFunarg" | "SymbolVar"),
        Language::Java => matches!(kind, "NameParam" | "NameVar"),
        Language::Python => {
            matches!(kind, "NameParam" | "NameStore")
                && ast.value(leaf).is_some_and(|v| v.as_str() != "self")
        }
        Language::CSharp => {
            if kind != "Identifier" {
                return false;
            }
            let Some(parent) = ast.parent(leaf) else {
                return false;
            };
            let parent_kind = ast.kind(parent).as_str();
            matches!(
                parent_kind,
                "CatchClause" | "ForEachStatement" | "Parameter"
            ) || (parent_kind == "VariableDeclarator"
                && ast
                    .parent(parent)
                    .is_some_and(|gp| ast.kind(gp).as_str() == "VariableDeclaration"))
        }
    }
}

/// Whether `leaf` declares a method or function name.
fn declares_method(language: Language, ast: &Ast, leaf: NodeId) -> bool {
    let kind = ast.kind(leaf).as_str();
    match language {
        Language::JavaScript => matches!(kind, "SymbolDefun" | "SymbolLambda"),
        Language::Java => kind == "NameMethod",
        Language::Python => kind == "NameFunc",
        Language::CSharp => {
            kind == "Identifier"
                && ast
                    .parent(leaf)
                    .is_some_and(|p| ast.kind(p).as_str() == "MethodDeclaration")
        }
    }
}

impl ScopeTree {
    /// Builds the scope tree in one preorder pass: a node opened by a
    /// function kind starts a new scope whose parent is the scope
    /// governing the function node itself.
    pub fn build(language: Language, ast: &Ast) -> ScopeTree {
        let opening = scope_opening_kinds(language);
        let mut governing = vec![0usize; ast.len()];
        let mut scopes = vec![Scope {
            node: ast.root(),
            parent: None,
        }];
        // Preorder guarantees parents are visited before children, so
        // `governing[parent]` is final when a child is reached.
        for id in ast.preorder() {
            let here = match ast.parent(id) {
                None => 0,
                Some(parent) => {
                    if opening.contains(&ast.kind(parent).as_str()) {
                        // The parent node opens a scope; find or create it.
                        match scopes.iter().position(|s| s.node == parent) {
                            Some(i) => i,
                            None => {
                                scopes.push(Scope {
                                    node: parent,
                                    parent: Some(governing[parent.index()]),
                                });
                                scopes.len() - 1
                            }
                        }
                    } else {
                        governing[parent.index()]
                    }
                }
            };
            governing[id.index()] = here;
        }
        ScopeTree { governing, scopes }
    }

    /// The scope governing `id` (for a function node: the *enclosing*
    /// scope, not the one it opens).
    pub fn scope_of(&self, id: NodeId) -> usize {
        self.governing[id.index()]
    }

    pub fn scopes(&self) -> &[Scope] {
        &self.scopes
    }
}

/// One resolved binding group: every occurrence of `name` bound
/// together, with the scope (for variables) it binds in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedGroup {
    pub name: String,
    /// Index into the scope tree for variable bindings; `None` for
    /// file-wide (non-variable) groups.
    pub scope: Option<usize>,
    pub class: ElementClass,
    /// Occurrence leaves, in leaf order.
    pub occurrences: Vec<NodeId>,
}

/// The resolver output: binding groups plus shadowing observations.
#[derive(Debug)]
pub struct Resolution {
    pub groups: Vec<ResolvedGroup>,
    /// `(name, scope-opening node)` pairs where a declaration shadows
    /// an enclosing scope's declaration of the same name.
    pub shadowed: Vec<(String, NodeId)>,
}

/// Resolves every identifier occurrence in `ast` to a binding group.
pub fn resolve(language: Language, ast: &Ast) -> Resolution {
    let tree = ScopeTree::build(language, ast);
    // Declaration sites per (name, scope), in deterministic name order.
    let mut declared: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
    for &leaf in ast.leaves() {
        if declares_variable(language, ast, leaf) {
            if let Some(value) = ast.value(leaf) {
                declared
                    .entry(value.as_str())
                    .or_default()
                    .insert(tree.scope_of(leaf));
            }
        }
    }

    // Group occurrences: variables by exact governing scope, the rest
    // into one file-wide residual group per name.
    let mut variable_groups: BTreeMap<(&str, usize), Vec<NodeId>> = BTreeMap::new();
    let mut residual_groups: BTreeMap<&str, Vec<NodeId>> = BTreeMap::new();
    for &leaf in ast.leaves() {
        let Some(value) = ast.value(leaf) else {
            continue;
        };
        let name = value.as_str();
        let scope = tree.scope_of(leaf);
        match declared.get(name) {
            Some(scopes) if scopes.contains(&scope) => {
                variable_groups.entry((name, scope)).or_default().push(leaf);
            }
            _ => residual_groups.entry(name).or_default().push(leaf),
        }
    }

    let mut groups = Vec::new();
    for ((name, scope), occurrences) in variable_groups {
        groups.push(ResolvedGroup {
            name: name.to_string(),
            scope: Some(scope),
            class: ElementClass::Variable,
            occurrences,
        });
    }
    for (name, occurrences) in residual_groups {
        let class = if occurrences
            .iter()
            .any(|&l| declares_method(language, ast, l))
        {
            ElementClass::Method
        } else {
            ElementClass::Other
        };
        groups.push(ResolvedGroup {
            name: name.to_string(),
            scope: None,
            class,
            occurrences,
        });
    }

    // Shadowing: a declaration whose enclosing scopes also declare the
    // same name.
    let mut shadowed = Vec::new();
    for (name, scopes) in &declared {
        for &scope in scopes {
            let mut up = tree.scopes[scope].parent;
            while let Some(ancestor) = up {
                if scopes.contains(&ancestor) {
                    shadowed.push((name.to_string(), tree.scopes[scope].node));
                    break;
                }
                up = tree.scopes[ancestor].parent;
            }
        }
    }

    Resolution { groups, shadowed }
}

/// A canonical, comparable form of a binding group: name, class tag,
/// and the sorted occurrence indices.
fn canonical(name: &str, class: ElementClass, occurrences: &[NodeId]) -> (String, u8, Vec<u32>) {
    let tag = match class {
        ElementClass::Variable => 0,
        ElementClass::Method => 1,
        ElementClass::Other => 2,
    };
    let mut occ: Vec<u32> = occurrences.iter().map(|&n| n.index() as u32).collect();
    occ.sort_unstable();
    (name.to_string(), tag, occ)
}

/// Diffs the resolver's binding groups against the evaluation layer's
/// `classify_elements` output for the same tree. Any disagreement —
/// missing occurrences, duplicated occurrences, or differently-shaped
/// groups — is an error: the two implementations encode the same
/// contract and must agree exactly.
pub fn cross_check(
    language: Language,
    unit: &str,
    ast: &Ast,
    elements: &[Element],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Every leaf must be covered by the elements exactly once.
    let mut covered = vec![0usize; ast.len()];
    for element in elements {
        for &leaf in &element.occurrences {
            covered[leaf.index()] += 1;
        }
    }
    for &leaf in ast.leaves() {
        match covered[leaf.index()] {
            1 => {}
            0 => diags.push(
                Diagnostic::new(
                    "scope-occurrence-missing",
                    Severity::Error,
                    unit,
                    format!(
                        "leaf {:?} is in no element group",
                        ast.value(leaf)
                            .map(|v| v.as_str().to_string())
                            .unwrap_or_default()
                    ),
                )
                .with_language(language)
                .with_node(leaf.index() as u32),
            ),
            n => diags.push(
                Diagnostic::new(
                    "scope-occurrence-duplicated",
                    Severity::Error,
                    unit,
                    format!(
                        "leaf {:?} appears in {n} element groups",
                        ast.value(leaf)
                            .map(|v| v.as_str().to_string())
                            .unwrap_or_default()
                    ),
                )
                .with_language(language)
                .with_node(leaf.index() as u32),
            ),
        }
    }

    // Group-shape agreement, compared in canonical form.
    let resolution = resolve(language, ast);
    let ours: BTreeSet<(String, u8, Vec<u32>)> = resolution
        .groups
        .iter()
        .map(|g| canonical(&g.name, g.class, &g.occurrences))
        .collect();
    let theirs: BTreeSet<(String, u8, Vec<u32>)> = elements
        .iter()
        .map(|e| canonical(&e.name, e.class, &e.occurrences))
        .collect();
    for (name, _, occ) in ours.difference(&theirs) {
        diags.push(
            Diagnostic::new(
                "scope-cross-check",
                Severity::Error,
                unit,
                format!(
                    "resolver binds {name:?} as one group of {} occurrence(s) but the element \
                     classifier groups it differently",
                    occ.len()
                ),
            )
            .with_language(language),
        );
    }
    for (name, _, occ) in theirs.difference(&ours) {
        diags.push(
            Diagnostic::new(
                "scope-cross-check",
                Severity::Error,
                unit,
                format!(
                    "element classifier groups {name:?} as one group of {} occurrence(s) but the \
                     resolver binds it differently",
                    occ.len()
                ),
            )
            .with_language(language),
        );
    }

    // Shadowing is legitimate code, but worth surfacing.
    for (name, scope_node) in &resolution.shadowed {
        diags.push(
            Diagnostic::new(
                "scope-shadowing",
                Severity::Info,
                unit,
                format!("declaration of {name:?} shadows a declaration in an enclosing scope"),
            )
            .with_language(language)
            .with_node(scope_node.index() as u32),
        );
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use pigeon_eval::classify_elements;

    fn check_language(language: Language, source: &str) {
        let ast = language.parse(source).unwrap();
        let elements = classify_elements(language, &ast);
        let diags = cross_check(language, "u", &ast, &elements);
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{language:?}: {errors:?}");
    }

    #[test]
    fn agrees_with_classifier_on_handwritten_sources() {
        check_language(
            Language::JavaScript,
            "function send(url, req) { var done = false; req.open('GET', url, done); }",
        );
        check_language(
            Language::Java,
            "class A { int count(List<Integer> values) { int count = 0; return count; } }",
        );
        check_language(
            Language::Python,
            "class H:\n    def handle(self, request):\n        data = request.body\n        return data\n",
        );
        check_language(
            Language::CSharp,
            "class A { public int Sum(int[] xs) { int total = 0; foreach (var x in xs) { total += x; } return total; } }",
        );
    }

    #[test]
    fn same_name_in_two_functions_is_two_groups() {
        let ast = Language::JavaScript
            .parse("function f(a) { return a; } function g(a) { return a; }")
            .unwrap();
        let resolution = resolve(Language::JavaScript, &ast);
        let a_groups: Vec<_> = resolution.groups.iter().filter(|g| g.name == "a").collect();
        assert_eq!(a_groups.len(), 2);
        assert!(a_groups.iter().all(|g| g.class == ElementClass::Variable));
    }

    #[test]
    fn tampered_grouping_is_detected() {
        // Merge two per-function variable elements into one: the
        // cross-check must flag the disagreement as an error.
        let ast = Language::JavaScript
            .parse("function f(a) { return a; } function g(a) { return a; }")
            .unwrap();
        let mut elements = classify_elements(Language::JavaScript, &ast);
        let mut merged: Vec<Element> = Vec::new();
        for e in elements.drain(..) {
            if e.name == "a" {
                match merged.iter_mut().find(|m| m.name == "a") {
                    Some(m) => m.occurrences.extend(e.occurrences),
                    None => merged.push(e),
                }
            } else {
                merged.push(e);
            }
        }
        let diags = cross_check(Language::JavaScript, "u", &ast, &merged);
        assert!(diags.iter().any(|d| d.code == "scope-cross-check"));
    }

    #[test]
    fn dropped_occurrence_is_detected() {
        let ast = Language::Python.parse("def f(x):\n    return x\n").unwrap();
        let mut elements = classify_elements(Language::Python, &ast);
        let victim = elements.iter_mut().find(|e| e.name == "x").unwrap();
        victim.occurrences.pop();
        let diags = cross_check(Language::Python, "u", &ast, &elements);
        assert!(diags.iter().any(|d| d.code == "scope-occurrence-missing"));
    }

    #[test]
    fn shadowing_is_reported_as_info() {
        // An inner function redeclares `x` declared in the outer one.
        let ast = Language::JavaScript
            .parse("function f() { var x = 1; var g = function (x) { return x; }; return g(x); }")
            .unwrap();
        let resolution = resolve(Language::JavaScript, &ast);
        assert!(resolution.shadowed.iter().any(|(name, _)| name == "x"));
        let elements = classify_elements(Language::JavaScript, &ast);
        let diags = cross_check(Language::JavaScript, "u", &ast, &elements);
        let shadow: Vec<_> = diags
            .iter()
            .filter(|d| d.code == "scope-shadowing")
            .collect();
        assert!(!shadow.is_empty());
        assert!(shadow.iter().all(|d| d.severity == Severity::Info));
    }

    #[test]
    fn agrees_on_generated_corpora_for_all_languages() {
        for language in Language::ALL {
            let corpus = pigeon_corpus::generate(
                language,
                &pigeon_corpus::CorpusConfig::default().with_files(10),
            );
            for (i, doc) in corpus.docs.iter().enumerate() {
                let ast = language.parse(&doc.source).unwrap();
                let elements = classify_elements(language, &ast);
                let diags = cross_check(language, &format!("doc{i}"), &ast, &elements);
                let errors: Vec<_> = diags
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .collect();
                assert!(errors.is_empty(), "{language:?} doc{i}: {errors:?}");
            }
        }
    }
}
