//! Per-function control-flow graphs over the four mini-language ASTs.
//!
//! One [`Cfg`] is built for every function scope the resolver's
//! [`crate::scopes::ScopeTree`] identifies (the root scope is skipped:
//! top-level code mixes declarations whose uses live in nested scopes,
//! so flow conclusions there would be unsound). CFG nodes are
//! statement-level: each node carries an ordered list of AST subtrees
//! (`parts`) evaluated in that node, and the builder lowers the
//! structured statements of each frontend — sequencing, `if`/`else`,
//! the loop family, `switch`, `try`, `return`/`break`/`continue`/
//! `throw` — into explicit edges.
//!
//! The construction is a pure function of the AST: node indices follow
//! the deterministic lowering order, edge lists are deduplicated in
//! insertion order, and no hashing or parallelism is involved, so the
//! same source always yields byte-identical graphs (the jobs-invariance
//! the audit report relies on).
//!
//! Where a frontend's tree shape is ambiguous (a classic `for` whose
//! clause count cannot be told apart from spliced body statements), the
//! builder falls back to a conservative *loop region*: every statement
//! in the region both loops back to the header and may exit the loop.
//! Over-approximating edges is always safe for the consumers in
//! [`crate::dataflow`] — extra paths can only suppress findings, never
//! invent them.

use crate::scopes::{scope_opening_kinds, ScopeTree};
use pigeon_ast::{Ast, NodeId};
use pigeon_corpus::Language;

/// Index of the synthetic entry node (holds parameter bindings).
pub const ENTRY: usize = 0;
/// Index of the synthetic exit node (empty; `return`/`throw` and the
/// function's fall-through end all flow here).
pub const EXIT: usize = 1;

/// One statement-level CFG node.
#[derive(Debug, Default)]
pub struct CfgNode {
    /// AST subtrees evaluated in this node, in evaluation order.
    /// Leaves belonging to nested function scopes are filtered out by
    /// the dataflow layer, not here.
    pub parts: Vec<NodeId>,
    /// Successor node indices, deduplicated, insertion order.
    pub succs: Vec<usize>,
    /// Predecessor node indices, deduplicated, insertion order.
    pub preds: Vec<usize>,
}

/// The control-flow graph of one function scope.
#[derive(Debug)]
pub struct Cfg {
    /// Index of this function's scope in the [`ScopeTree`].
    pub scope: usize,
    /// The scope-opening AST node (the function itself).
    pub function: NodeId,
    /// Nodes; `nodes[ENTRY]` and `nodes[EXIT]` are always present.
    pub nodes: Vec<CfgNode>,
}

impl Cfg {
    /// Node indices reachable from the entry, in index order.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut work = vec![ENTRY];
        seen[ENTRY] = true;
        while let Some(n) = work.pop() {
            for &s in &self.nodes[n].succs {
                if !seen[s] {
                    seen[s] = true;
                    work.push(s);
                }
            }
        }
        seen
    }

    /// Node indices reachable from `start` (inclusive), in index order.
    pub fn reachable_from(&self, start: usize) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut work = vec![start];
        seen[start] = true;
        while let Some(n) = work.pop() {
            for &s in &self.nodes[n].succs {
                if !seen[s] {
                    seen[s] = true;
                    work.push(s);
                }
            }
        }
        seen
    }
}

/// Builds one CFG per function scope of `ast` (skipping the root
/// scope), in scope-tree order.
pub fn build_cfgs(language: Language, ast: &Ast, tree: &ScopeTree) -> Vec<Cfg> {
    (1..tree.scopes().len())
        .map(|scope| build_function(language, ast, tree.scopes()[scope].node, scope))
        .collect()
}

/// Statement-level kinds that can appear where an expression clause is
/// expected; used to disambiguate classic `for` headers.
fn statement_like(language: Language, kind: &str) -> bool {
    let kinds: &[&str] = match language {
        Language::JavaScript => &[
            "Block", "If", "While", "Do", "For", "ForIn", "ForOf", "Try", "Switch", "Return",
            "Break", "Continue", "Throw", "Defun",
        ],
        Language::Java => &[
            "Block",
            "If",
            "While",
            "Do",
            "For",
            "ForEach",
            "Try",
            "Switch",
            "LocalVar",
            "ExpressionStmt",
            "Return",
            "Break",
            "Continue",
            "Throw",
        ],
        Language::Python => &[],
        Language::CSharp => &[
            "Block",
            "IfStatement",
            "WhileStatement",
            "DoStatement",
            "ForStatement",
            "ForEachStatement",
            "TryStatement",
            "SwitchStatement",
            "LocalDeclarationStatement",
            "ExpressionStatement",
            "ReturnStatement",
            "BreakStatement",
            "ContinueStatement",
            "ThrowStatement",
        ],
    };
    kinds.contains(&kind)
}

/// One `break`/`continue` scope: loops carry a continue target, switch
/// frames do not.
struct Frame {
    continue_to: Option<usize>,
    breaks: Vec<usize>,
}

struct Builder<'a> {
    language: Language,
    ast: &'a Ast,
    nodes: Vec<CfgNode>,
    frames: Vec<Frame>,
    /// Nodes whose control flow leaves the function (`return`/`throw`).
    exits: Vec<usize>,
}

fn build_function(language: Language, ast: &Ast, function: NodeId, scope: usize) -> Cfg {
    let mut b = Builder {
        language,
        ast,
        nodes: vec![CfgNode::default(), CfgNode::default()],
        frames: Vec::new(),
        exits: Vec::new(),
    };
    let (params, body) = b.split_header(function);
    b.nodes[ENTRY].parts = params;
    let outs = b.seq(&body, vec![ENTRY]);
    for n in outs.into_iter().chain(std::mem::take(&mut b.exits)) {
        b.wire(n, EXIT);
    }
    Cfg {
        scope,
        function,
        nodes: b.nodes,
    }
}

impl<'a> Builder<'a> {
    fn kind(&self, id: NodeId) -> &str {
        self.ast.kind(id).as_str()
    }

    fn node(&mut self, parts: Vec<NodeId>, preds: &[usize]) -> usize {
        let n = self.nodes.len();
        self.nodes.push(CfgNode {
            parts,
            ..CfgNode::default()
        });
        for &p in preds {
            self.wire(p, n);
        }
        n
    }

    fn wire(&mut self, from: usize, to: usize) {
        if !self.nodes[from].succs.contains(&to) {
            self.nodes[from].succs.push(to);
            self.nodes[to].preds.push(from);
        }
    }

    fn wire_all(&mut self, from: &[usize], to: usize) {
        for &f in from {
            self.wire(f, to);
        }
    }

    /// Splits a function node into parameter-bearing entry parts and
    /// body statements, per frontend.
    fn split_header(&self, function: NodeId) -> (Vec<NodeId>, Vec<NodeId>) {
        let children = self.ast.children(function);
        let mut params = Vec::new();
        let mut body = Vec::new();
        match self.language {
            Language::JavaScript => {
                for &c in children {
                    match self.kind(c) {
                        "SymbolFunarg" => params.push(c),
                        "SymbolDefun" | "SymbolLambda" => {}
                        _ => body.push(c),
                    }
                }
            }
            Language::Java => {
                for &c in children {
                    match self.kind(c) {
                        "Parameter" => params.push(c),
                        "Block" => body.extend(self.ast.children(c).iter().copied()),
                        _ => {}
                    }
                }
            }
            Language::Python => {
                for &c in children {
                    match self.kind(c) {
                        "NameParam" | "DefaultParam" => params.push(c),
                        "NameFunc" => {}
                        _ => body.push(c),
                    }
                }
            }
            Language::CSharp => {
                for &c in children {
                    match self.kind(c) {
                        "ParameterList" => params.extend(self.ast.children(c).iter().copied()),
                        "Block" => body.extend(self.ast.children(c).iter().copied()),
                        _ => {}
                    }
                }
            }
        }
        (params, body)
    }

    /// Declaration statements become one node whose parts are the
    /// individual declarators, so `var a = 1, b = a;` sequences
    /// correctly.
    fn decl_parts(&self, stmt: NodeId) -> Vec<NodeId> {
        let kind = self.kind(stmt);
        match (self.language, kind) {
            (Language::JavaScript, "Var" | "Let" | "Const") => self.ast.children(stmt).to_vec(),
            (Language::Java, "LocalVar") => self
                .ast
                .children(stmt)
                .iter()
                .copied()
                .filter(|&c| self.kind(c) == "VariableDeclarator")
                .collect(),
            (Language::CSharp, "LocalDeclarationStatement") => {
                let mut parts = Vec::new();
                for &c in self.ast.children(stmt) {
                    if self.kind(c) == "VariableDeclaration" {
                        parts.extend(
                            self.ast
                                .children(c)
                                .iter()
                                .copied()
                                .filter(|&d| self.kind(d) == "VariableDeclarator"),
                        );
                    }
                }
                parts
            }
            _ => vec![stmt],
        }
    }

    fn seq(&mut self, stmts: &[NodeId], mut preds: Vec<usize>) -> Vec<usize> {
        for &s in stmts {
            preds = self.stmt(s, preds);
        }
        preds
    }

    /// Lowers one statement; returns the dangling exits that flow to
    /// whatever follows.
    fn stmt(&mut self, id: NodeId, preds: Vec<usize>) -> Vec<usize> {
        if scope_opening_kinds(self.language).contains(&self.kind(id)) {
            // A nested function is an atomic value at this level; its
            // body belongs to its own CFG.
            return vec![self.node(vec![id], &preds)];
        }
        match self.language {
            Language::JavaScript => self.stmt_js(id, preds),
            Language::Java => self.stmt_java(id, preds),
            Language::Python => self.stmt_python(id, preds),
            Language::CSharp => self.stmt_csharp(id, preds),
        }
    }

    fn atomic(&mut self, id: NodeId, preds: &[usize]) -> Vec<usize> {
        vec![self.node(vec![id], preds)]
    }

    /// `break`: route `preds` to the innermost frame.
    fn do_break(&mut self, preds: Vec<usize>) -> Vec<usize> {
        match self.frames.last_mut() {
            Some(f) => f.breaks.extend(preds),
            None => self.exits.extend(preds),
        }
        Vec::new()
    }

    /// `continue`: route `preds` to the innermost loop's latch.
    fn do_continue(&mut self, preds: Vec<usize>) -> Vec<usize> {
        let target = self.frames.iter().rev().find_map(|f| f.continue_to);
        match target {
            Some(t) => self.wire_all(&preds, t),
            None => self.exits.extend(preds),
        }
        Vec::new()
    }

    fn do_return(&mut self, id: NodeId, preds: &[usize]) -> Vec<usize> {
        let n = self.node(self.ast.children(id).to_vec(), preds);
        self.exits.push(n);
        Vec::new()
    }

    /// `while (cond) body`: cond is the header; body loops back to it.
    fn lower_while(&mut self, cond: NodeId, body: &[NodeId], preds: Vec<usize>) -> Vec<usize> {
        let c = self.node(vec![cond], &preds);
        self.frames.push(Frame {
            continue_to: Some(c),
            breaks: Vec::new(),
        });
        let outs = self.seq(body, vec![c]);
        self.wire_all(&outs, c);
        let frame = self.frames.pop().expect("pushed above");
        let mut outs = vec![c];
        outs.extend(frame.breaks);
        outs
    }

    /// `do body while (cond)`: body runs first; cond loops back to it.
    fn lower_do(&mut self, body: NodeId, cond: NodeId, preds: Vec<usize>) -> Vec<usize> {
        let h = self.node(Vec::new(), &preds);
        let c = self.node(vec![cond], &[]);
        self.frames.push(Frame {
            continue_to: Some(c),
            breaks: Vec::new(),
        });
        let body_outs = self.stmt(body, vec![h]);
        self.wire_all(&body_outs, c);
        self.wire(c, h);
        let frame = self.frames.pop().expect("pushed above");
        let mut outs = vec![c];
        outs.extend(frame.breaks);
        outs
    }

    /// A classic three-clause `for`: init → cond → body → update → cond.
    fn lower_for3(
        &mut self,
        init: NodeId,
        cond: NodeId,
        update: NodeId,
        body: &[NodeId],
        preds: Vec<usize>,
    ) -> Vec<usize> {
        let i = self.node(self.decl_parts(init), &preds);
        let c = self.node(vec![cond], &[i]);
        let u = self.node(vec![update], &[]);
        self.frames.push(Frame {
            continue_to: Some(u),
            breaks: Vec::new(),
        });
        let body_outs = self.seq(body, vec![c]);
        self.wire_all(&body_outs, u);
        self.wire(u, c);
        let frame = self.frames.pop().expect("pushed above");
        let mut outs = vec![c];
        outs.extend(frame.breaks);
        outs
    }

    /// The conservative fallback for a `for` whose clause roles cannot
    /// be identified: every statement loops back to the header and may
    /// exit the loop.
    fn lower_loop_region(&mut self, stmts: &[NodeId], preds: Vec<usize>) -> Vec<usize> {
        let h = self.node(Vec::new(), &preds);
        self.frames.push(Frame {
            continue_to: Some(h),
            breaks: Vec::new(),
        });
        let start = self.nodes.len();
        let region_outs = self.seq(stmts, vec![h]);
        let end = self.nodes.len();
        self.wire_all(&region_outs, h);
        let frame = self.frames.pop().expect("pushed above");
        let mut outs = vec![h];
        outs.extend(start..end);
        outs.extend(frame.breaks);
        outs
    }

    /// A foreach-style loop: the header evaluates the iterable then
    /// binds the element; the body loops back to the header.
    fn lower_foreach(
        &mut self,
        header_parts: Vec<NodeId>,
        body: &[NodeId],
        preds: Vec<usize>,
    ) -> Vec<usize> {
        let h = self.node(header_parts, &preds);
        self.frames.push(Frame {
            continue_to: Some(h),
            breaks: Vec::new(),
        });
        let outs = self.seq(body, vec![h]);
        self.wire_all(&outs, h);
        let frame = self.frames.pop().expect("pushed above");
        let mut outs = vec![h];
        outs.extend(frame.breaks);
        outs
    }

    /// `try`: handlers are entered from the state before the `try` and
    /// after every node of its body (an exception may fire anywhere).
    fn lower_try(
        &mut self,
        body: &[NodeId],
        handlers: &[(Vec<NodeId>, Vec<NodeId>)],
        finally: Option<&[NodeId]>,
        preds: Vec<usize>,
    ) -> Vec<usize> {
        let start = self.nodes.len();
        let body_outs = self.seq(body, preds.clone());
        let end = self.nodes.len();
        let mut handler_preds = preds;
        handler_preds.extend(start..end);
        let mut after = body_outs;
        for (binding, stmts) in handlers {
            let entry = self.node(binding.clone(), &handler_preds);
            after.extend(self.seq(stmts, vec![entry]));
        }
        match finally {
            Some(stmts) => self.seq(stmts, after),
            None => after,
        }
    }

    /// `switch`: arms fall through in order; without a `default` the
    /// scrutinee may match nothing and flow past.
    fn lower_switch(
        &mut self,
        scrutinee: NodeId,
        arms: &[(Option<NodeId>, Vec<NodeId>)],
        preds: Vec<usize>,
    ) -> Vec<usize> {
        let s = self.node(vec![scrutinee], &preds);
        self.frames.push(Frame {
            continue_to: None,
            breaks: Vec::new(),
        });
        let mut fall: Vec<usize> = Vec::new();
        let mut has_default = false;
        for (test, stmts) in arms {
            let mut arm_preds = vec![s];
            arm_preds.extend(fall.iter().copied());
            let entry = match test {
                Some(v) => self.node(vec![*v], &arm_preds),
                None => {
                    has_default = true;
                    self.node(Vec::new(), &arm_preds)
                }
            };
            fall = self.seq(stmts, vec![entry]);
        }
        let frame = self.frames.pop().expect("pushed above");
        let mut outs = fall;
        outs.extend(frame.breaks);
        if !has_default {
            outs.push(s);
        }
        outs
    }

    // ----- JavaScript -------------------------------------------------

    fn stmt_js(&mut self, id: NodeId, preds: Vec<usize>) -> Vec<usize> {
        let children = self.ast.children(id).to_vec();
        match self.kind(id) {
            "Block" => self.seq(&children, preds),
            "If" => {
                let c = self.node(vec![children[0]], &preds);
                let has_else = children.last().is_some_and(|&l| self.kind(l) == "Else");
                let then_end = if has_else {
                    children.len() - 1
                } else {
                    children.len()
                };
                let mut outs = self.seq(&children[1..then_end], vec![c]);
                if has_else {
                    let alt = self.ast.children(children[children.len() - 1]).to_vec();
                    outs.extend(self.seq(&alt, vec![c]));
                } else {
                    outs.push(c);
                }
                outs
            }
            "While" => self.lower_while(children[0], &children[1..], preds),
            "Do" => self.lower_do(children[0], children[1], preds),
            "For" => {
                // The body is spliced after the clauses, so the clause
                // count is only certain when all three are present and
                // expression-shaped.
                let three_clauses = children.len() >= 4
                    && !statement_like(self.language, self.kind(children[1]))
                    && !statement_like(self.language, self.kind(children[2]))
                    && (matches!(self.kind(children[0]), "Var" | "Let" | "Const")
                        || !statement_like(self.language, self.kind(children[0])));
                if three_clauses {
                    self.lower_for3(children[0], children[1], children[2], &children[3..], preds)
                } else {
                    self.lower_loop_region(&children, preds)
                }
            }
            "ForIn" | "ForOf" => {
                self.lower_foreach(vec![children[1], children[0]], &children[2..], preds)
            }
            "Try" => {
                let body = self.ast.children(children[0]).to_vec();
                let mut handlers = Vec::new();
                let mut finally = None;
                for &c in &children[1..] {
                    match self.kind(c) {
                        "Catch" => {
                            let mut binding = Vec::new();
                            let mut stmts = Vec::new();
                            for &h in self.ast.children(c) {
                                match self.kind(h) {
                                    "SymbolCatch" => binding.push(h),
                                    "Block" => stmts.extend(self.ast.children(h).iter().copied()),
                                    _ => stmts.push(h),
                                }
                            }
                            handlers.push((binding, stmts));
                        }
                        "Finally" => {
                            let mut stmts = Vec::new();
                            for &h in self.ast.children(c) {
                                if self.kind(h) == "Block" {
                                    stmts.extend(self.ast.children(h).iter().copied());
                                } else {
                                    stmts.push(h);
                                }
                            }
                            finally = Some(stmts);
                        }
                        _ => {}
                    }
                }
                self.lower_try(&body, &handlers, finally.as_deref(), preds)
            }
            "Switch" => {
                let arms: Vec<(Option<NodeId>, Vec<NodeId>)> = children[1..]
                    .iter()
                    .map(|&arm| {
                        let arm_children = self.ast.children(arm).to_vec();
                        if self.kind(arm) == "Case" {
                            (Some(arm_children[0]), arm_children[1..].to_vec())
                        } else {
                            (None, arm_children)
                        }
                    })
                    .collect();
                self.lower_switch(children[0], &arms, preds)
            }
            "Var" | "Let" | "Const" => vec![self.node(self.decl_parts(id), &preds)],
            "Return" => self.do_return(id, &preds),
            "Throw" => self.do_return(id, &preds),
            "Break" => self.do_break(preds),
            "Continue" => self.do_continue(preds),
            _ => self.atomic(id, &preds),
        }
    }

    // ----- Java -------------------------------------------------------

    fn stmt_java(&mut self, id: NodeId, preds: Vec<usize>) -> Vec<usize> {
        let children = self.ast.children(id).to_vec();
        match self.kind(id) {
            "Block" => self.seq(&children, preds),
            "If" => {
                let c = self.node(vec![children[0]], &preds);
                let mut outs = self.stmt(children[1], vec![c]);
                match children.get(2) {
                    Some(&alt) => outs.extend(self.stmt(alt, vec![c])),
                    None => outs.push(c),
                }
                outs
            }
            "While" => self.lower_while(children[0], &children[1..], preds),
            "Do" => self.lower_do(children[0], children[1], preds),
            "For" => {
                // Body is always the last child; only the full
                // three-clause header is unambiguous.
                if children.len() == 4 {
                    self.lower_for3(children[0], children[1], children[2], &children[3..], preds)
                } else {
                    self.lower_loop_region(&children, preds)
                }
            }
            "ForEach" => {
                // [ty, NameVar, iterable, body]
                self.lower_foreach(vec![children[2], children[1]], &children[3..], preds)
            }
            "Try" => {
                let body = self.ast.children(children[0]).to_vec();
                let mut handlers = Vec::new();
                let mut finally = None;
                for &c in &children[1..] {
                    match self.kind(c) {
                        "Catch" => {
                            let mut binding = Vec::new();
                            let mut stmts = Vec::new();
                            for &h in self.ast.children(c) {
                                match self.kind(h) {
                                    "NameParam" => binding.push(h),
                                    "Block" => stmts.extend(self.ast.children(h).iter().copied()),
                                    _ => {}
                                }
                            }
                            handlers.push((binding, stmts));
                        }
                        "Finally" => {
                            let mut stmts = Vec::new();
                            for &h in self.ast.children(c) {
                                if self.kind(h) == "Block" {
                                    stmts.extend(self.ast.children(h).iter().copied());
                                } else {
                                    stmts.push(h);
                                }
                            }
                            finally = Some(stmts);
                        }
                        _ => {}
                    }
                }
                self.lower_try(&body, &handlers, finally.as_deref(), preds)
            }
            "Switch" => {
                let arms: Vec<(Option<NodeId>, Vec<NodeId>)> = children[1..]
                    .iter()
                    .map(|&arm| {
                        let arm_children = self.ast.children(arm).to_vec();
                        if self.kind(arm) == "Case" {
                            (Some(arm_children[0]), arm_children[1..].to_vec())
                        } else {
                            (None, arm_children)
                        }
                    })
                    .collect();
                self.lower_switch(children[0], &arms, preds)
            }
            "LocalVar" => vec![self.node(self.decl_parts(id), &preds)],
            "ExpressionStmt" => self.atomic(id, &preds),
            "Return" | "Throw" => self.do_return(id, &preds),
            "Break" => self.do_break(preds),
            "Continue" => self.do_continue(preds),
            _ => self.atomic(id, &preds),
        }
    }

    // ----- Python -----------------------------------------------------

    fn stmt_python(&mut self, id: NodeId, preds: Vec<usize>) -> Vec<usize> {
        let children = self.ast.children(id).to_vec();
        match self.kind(id) {
            "If" => {
                let c = self.node(vec![children[0]], &preds);
                let has_else = children.last().is_some_and(|&l| self.kind(l) == "OrElse");
                let then_end = if has_else {
                    children.len() - 1
                } else {
                    children.len()
                };
                let mut outs = self.seq(&children[1..then_end], vec![c]);
                if has_else {
                    let alt = self.ast.children(children[children.len() - 1]).to_vec();
                    outs.extend(self.seq(&alt, vec![c]));
                } else {
                    outs.push(c);
                }
                outs
            }
            "While" => self.lower_while(children[0], &children[1..], preds),
            "For" => {
                // [target, iter, body...]: iterate, bind, loop.
                self.lower_foreach(vec![children[1], children[0]], &children[2..], preds)
            }
            "With" => {
                // [ctx, NameStore?, body...]
                let mut header = vec![children[0]];
                let mut body_start = 1;
                if children.len() > 1 && self.kind(children[1]) == "NameStore" {
                    header.push(children[1]);
                    body_start = 2;
                }
                let w = self.node(header, &preds);
                self.seq(&children[body_start..], vec![w])
            }
            "Try" => {
                let body = self.ast.children(children[0]).to_vec();
                let mut handlers = Vec::new();
                let mut finally = None;
                for &c in &children[1..] {
                    match self.kind(c) {
                        "ExceptHandler" => {
                            let mut binding = Vec::new();
                            let mut stmts = Vec::new();
                            for &h in self.ast.children(c) {
                                match self.kind(h) {
                                    "NameStore" => binding.push(h),
                                    "ExceptType" => {}
                                    _ => stmts.push(h),
                                }
                            }
                            handlers.push((binding, stmts));
                        }
                        "Finally" => finally = Some(self.ast.children(c).to_vec()),
                        _ => {}
                    }
                }
                self.lower_try(&body, &handlers, finally.as_deref(), preds)
            }
            "Return" | "Raise" => self.do_return(id, &preds),
            "Break" => self.do_break(preds),
            "Continue" => self.do_continue(preds),
            "Pass" => preds,
            _ => self.atomic(id, &preds),
        }
    }

    // ----- C# ---------------------------------------------------------

    fn stmt_csharp(&mut self, id: NodeId, preds: Vec<usize>) -> Vec<usize> {
        let children = self.ast.children(id).to_vec();
        match self.kind(id) {
            "Block" => self.seq(&children, preds),
            "IfStatement" => {
                let c = self.node(vec![children[0]], &preds);
                let mut outs = self.stmt(children[1], vec![c]);
                match children.get(2) {
                    Some(&alt) => outs.extend(self.stmt(alt, vec![c])),
                    None => outs.push(c),
                }
                outs
            }
            "WhileStatement" => self.lower_while(children[0], &children[1..], preds),
            "DoStatement" => self.lower_do(children[0], children[1], preds),
            "ForStatement" => {
                if children.len() == 4 {
                    self.lower_for3(children[0], children[1], children[2], &children[3..], preds)
                } else {
                    self.lower_loop_region(&children, preds)
                }
            }
            "ForEachStatement" => {
                // [ty, Identifier, iterable, body]
                self.lower_foreach(vec![children[2], children[1]], &children[3..], preds)
            }
            "TryStatement" => {
                let body = self.ast.children(children[0]).to_vec();
                let mut handlers = Vec::new();
                let mut finally = None;
                for &c in &children[1..] {
                    match self.kind(c) {
                        "CatchClause" => {
                            let mut binding = Vec::new();
                            let mut stmts = Vec::new();
                            for &h in self.ast.children(c) {
                                match self.kind(h) {
                                    "Identifier" => binding.push(h),
                                    "Block" => stmts.extend(self.ast.children(h).iter().copied()),
                                    _ => {}
                                }
                            }
                            handlers.push((binding, stmts));
                        }
                        "FinallyClause" => {
                            let mut stmts = Vec::new();
                            for &h in self.ast.children(c) {
                                if self.kind(h) == "Block" {
                                    stmts.extend(self.ast.children(h).iter().copied());
                                } else {
                                    stmts.push(h);
                                }
                            }
                            finally = Some(stmts);
                        }
                        _ => {}
                    }
                }
                self.lower_try(&body, &handlers, finally.as_deref(), preds)
            }
            "SwitchStatement" => {
                let arms: Vec<(Option<NodeId>, Vec<NodeId>)> = children[1..]
                    .iter()
                    .map(|&arm| {
                        let arm_children = self.ast.children(arm).to_vec();
                        if self.kind(arm) == "CaseSwitchLabel" {
                            (Some(arm_children[0]), arm_children[1..].to_vec())
                        } else {
                            (None, arm_children)
                        }
                    })
                    .collect();
                self.lower_switch(children[0], &arms, preds)
            }
            "LocalDeclarationStatement" => vec![self.node(self.decl_parts(id), &preds)],
            "ExpressionStatement" => self.atomic(id, &preds),
            "ReturnStatement" | "ThrowStatement" => self.do_return(id, &preds),
            "BreakStatement" => self.do_break(preds),
            "ContinueStatement" => self.do_continue(preds),
            _ => self.atomic(id, &preds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfgs(language: Language, source: &str) -> (pigeon_ast::Ast, Vec<Cfg>) {
        let ast = language.parse(source).unwrap();
        let tree = ScopeTree::build(language, &ast);
        let graphs = build_cfgs(language, &ast, &tree);
        (ast, graphs)
    }

    #[test]
    fn straight_line_function_is_a_chain() {
        let (_, graphs) = cfgs(
            Language::JavaScript,
            "function f(a) { var x = a; return x; }",
        );
        assert_eq!(graphs.len(), 1);
        let g = &graphs[0];
        // entry → var → return → exit
        assert_eq!(g.nodes[ENTRY].succs.len(), 1);
        let var = g.nodes[ENTRY].succs[0];
        assert_eq!(g.nodes[var].succs.len(), 1);
        let ret = g.nodes[var].succs[0];
        assert_eq!(g.nodes[ret].succs, vec![EXIT]);
    }

    #[test]
    fn if_without_else_branches_and_rejoins() {
        let (_, graphs) = cfgs(
            Language::JavaScript,
            "function f(a) { if (a) { a = 1; } return a; }",
        );
        let g = &graphs[0];
        // The condition node has two successors: the then-branch and
        // (via fall-through) the return.
        let cond = g.nodes[ENTRY].succs[0];
        assert_eq!(g.nodes[cond].succs.len(), 2);
    }

    #[test]
    fn while_loop_has_a_back_edge() {
        let (_, graphs) = cfgs(
            Language::JavaScript,
            "function f(n) { while (n) { n = n - 1; } return n; }",
        );
        let g = &graphs[0];
        let cond = g.nodes[ENTRY].succs[0];
        let body = *g.nodes[cond]
            .succs
            .iter()
            .find(|&&s| g.nodes[s].succs.contains(&cond))
            .expect("loop body loops back to the condition");
        assert!(g.nodes[body].succs.contains(&cond));
    }

    #[test]
    fn classic_for_loops_in_every_c_like_language() {
        for (language, source) in [
            (
                Language::JavaScript,
                "function f(n) { for (var i = 0; i < n; i++) { n = n - 1; } return n; }",
            ),
            (
                Language::Java,
                "class A { int f(int n) { for (int i = 0; i < n; i++) { n = n - 1; } return n; } }",
            ),
            (
                Language::CSharp,
                "class A { int F(int n) { for (int i = 0; i < n; i++) { n = n - 1; } return n; } }",
            ),
        ] {
            let (_, graphs) = cfgs(language, source);
            let g = &graphs[0];
            // init → cond; cond has two successors (body, after); the
            // update loops back to cond.
            let init = g.nodes[ENTRY].succs[0];
            let cond = g.nodes[init].succs[0];
            assert_eq!(g.nodes[cond].succs.len(), 2, "{language:?}");
            assert!(
                g.nodes[cond].preds.len() >= 2,
                "{language:?}: cond must also be entered by the update's back edge"
            );
        }
    }

    #[test]
    fn return_cuts_fallthrough() {
        let (_, graphs) = cfgs(Language::Python, "def f(x):\n    return x\n    y = 1\n");
        let g = &graphs[0];
        // The statement after the return is unreachable.
        let reachable = g.reachable();
        let unreachable: Vec<usize> = (0..g.nodes.len()).filter(|&n| !reachable[n]).collect();
        assert!(!unreachable.is_empty());
    }

    #[test]
    fn try_handlers_are_entered_from_the_body() {
        let (_, graphs) = cfgs(
            Language::Python,
            "def f(x):\n    try:\n        y = x\n    except Exception as e:\n        y = e\n    return y\n",
        );
        let g = &graphs[0];
        // Some node carries the handler binding `e` as a part and has
        // more than one predecessor (try entry + body states).
        let handler = (0..g.nodes.len())
            .find(|&n| !g.nodes[n].parts.is_empty() && g.nodes[n].preds.len() >= 2 && n != EXIT);
        assert!(handler.is_some());
    }

    #[test]
    fn construction_is_deterministic() {
        for language in Language::ALL {
            let corpus = pigeon_corpus::generate(
                language,
                &pigeon_corpus::CorpusConfig::default().with_files(6),
            );
            for doc in &corpus.docs {
                let ast = language.parse(&doc.source).unwrap();
                let tree = ScopeTree::build(language, &ast);
                let a = build_cfgs(language, &ast, &tree);
                let b = build_cfgs(language, &ast, &tree);
                let dump = |gs: &[Cfg]| {
                    gs.iter()
                        .map(|g| {
                            g.nodes
                                .iter()
                                .map(|n| format!("{:?}{:?}{:?}", n.parts, n.succs, n.preds))
                                .collect::<String>()
                        })
                        .collect::<String>()
                };
                assert_eq!(dump(&a), dump(&b));
            }
        }
    }

    #[test]
    fn every_variable_occurrence_is_covered_by_some_part() {
        // On generated corpora, every occurrence of a function-scoped
        // variable must be inside some CFG node's parts — otherwise the
        // dataflow pass would silently miss uses or definitions.
        for language in Language::ALL {
            let corpus = pigeon_corpus::generate(
                language,
                &pigeon_corpus::CorpusConfig::default().with_files(6),
            );
            for doc in &corpus.docs {
                let ast = language.parse(&doc.source).unwrap();
                let tree = ScopeTree::build(language, &ast);
                let graphs = build_cfgs(language, &ast, &tree);
                let resolution = crate::scopes::resolve(language, &ast);
                for g in &graphs {
                    let mut covered = vec![false; ast.len()];
                    for node in &g.nodes {
                        for &part in &node.parts {
                            let mut stack = vec![part];
                            while let Some(id) = stack.pop() {
                                covered[id.index()] = true;
                                stack.extend(ast.children(id).iter().copied());
                            }
                        }
                    }
                    for group in &resolution.groups {
                        if group.scope != Some(g.scope) {
                            continue;
                        }
                        for &leaf in &group.occurrences {
                            assert!(
                                covered[leaf.index()],
                                "{language:?}: uncovered occurrence of {:?} (leaf {})",
                                group.name,
                                leaf.index(),
                            );
                        }
                    }
                }
            }
        }
    }
}
