//! Static analysis over PIGEON's pipeline artifacts: trees, corpora,
//! splits and trained models.
//!
//! The paper's pipeline trusts its inputs at every stage — the frontend
//! trusts its own trees, the extractor trusts the element grouping, the
//! evaluation trusts that train and test don't overlap, and prediction
//! trusts the weights it deserializes. This crate is the layer that
//! checks instead of trusting. Four analyses share one diagnostic
//! framework (see [`diag`]):
//!
//! 1. **Well-formedness** ([`wellformed`]): arena-structure invariants
//!    plus per-frontend grammar invariants (kind classes, forced
//!    arities, identifier value shape).
//! 2. **Scope cross-check** ([`scopes`]): an independent scope/binding
//!    resolver diffed against `pigeon_eval::classify_elements`;
//!    disagreement is a hard error.
//! 3. **Corpus & split integrity** ([`dedup`]): alpha-renaming-blind
//!    duplicate detection, MinHash near-duplicates, and the train/test
//!    leakage check.
//! 4. **Model sanity** ([`modellint`]): non-finite weights, dead
//!    tables, vocabulary coverage, empty candidate sets.
//!
//! [`audit_sources`] is the `pigeon audit` entry point: it fans file
//! audits out with `parallel_map_indexed`, whose input-order result
//! guarantee makes the report byte-identical for every `--jobs` value.
//!
//! ```
//! use pigeon_analysis::{audit_sources, AuditConfig, SourceUnit};
//! use pigeon_corpus::Language;
//!
//! let units = vec![SourceUnit {
//!     name: "one.js".to_string(),
//!     source: "function f(x) { return x + 1; }".to_string(),
//! }];
//! let report = audit_sources(Language::JavaScript, &units, &AuditConfig::default());
//! assert_eq!(report.denied_count(pigeon_analysis::Severity::Warning), 0);
//! ```

pub mod cfg;
pub mod dataflow;
pub mod dedup;
pub mod diag;
pub mod modellint;
pub mod scopes;
pub mod wellformed;

pub use cfg::{build_cfgs, Cfg, CfgNode};
pub use dataflow::{flow_edges, LINT_CODES};
pub use dedup::{check_split, Sketch, UnitPrint, NEAR_DUP_THRESHOLD};
pub use diag::{code_catalog, Diagnostic, DuplicationSummary, Report, Severity};
pub use modellint::{lint_artifact, lint_crf, lint_sgns};
pub use scopes::{cross_check, resolve, Resolution, ResolvedGroup, ScopeTree};
pub use wellformed::check_ast;

use pigeon_core::{normalized_fingerprint, parallel_map_indexed};
use pigeon_corpus::Language;

/// One source file to audit.
#[derive(Debug, Clone)]
pub struct SourceUnit {
    /// Display name (file path or synthetic label).
    pub name: String,
    pub source: String,
}

/// Knobs for [`audit_sources`].
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Worker threads for per-file auditing; `0` means all cores. The
    /// report is byte-identical for every value.
    pub jobs: usize,
    /// Estimated Jaccard similarity at which two files count as
    /// near-duplicates.
    pub near_dup_threshold: f64,
    /// Whether to run the O(files²) near-duplicate scan.
    pub near_dups: bool,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            jobs: 0,
            near_dup_threshold: NEAR_DUP_THRESHOLD,
            near_dups: true,
        }
    }
}

/// Audits one already-parsed tree: well-formedness plus the
/// scope/binding cross-check. This is what `pigeon generate` runs over
/// its own output before writing it.
pub fn audit_ast(language: Language, unit: &str, ast: &pigeon_ast::Ast) -> Vec<Diagnostic> {
    let mut diags = wellformed::check_ast(language, unit, ast);
    let elements = pigeon_eval::classify_elements(language, ast);
    diags.extend(scopes::cross_check(language, unit, ast, &elements));
    diags.extend(dataflow::lint(language, unit, ast));
    diags
}

/// Audits a corpus of source files end to end: parse, per-file tree and
/// scope checks (in parallel), then corpus-level duplication and
/// near-duplication analysis.
pub fn audit_sources(language: Language, units: &[SourceUnit], cfg: &AuditConfig) -> Report {
    let per_file = parallel_map_indexed(units, cfg.jobs, |_, unit| {
        match language.parse(&unit.source) {
            Err(message) => (
                vec![
                    Diagnostic::new("parse-error", Severity::Error, unit.name.clone(), message)
                        .with_language(language),
                ],
                None,
            ),
            Ok(ast) => {
                let diags = audit_ast(language, &unit.name, &ast);
                let print = UnitPrint {
                    name: unit.name.clone(),
                    fingerprint: normalized_fingerprint(&ast),
                    sketch: Sketch::of(&ast),
                };
                (diags, Some(print))
            }
        }
    });

    let mut report = Report {
        units_audited: units.len(),
        ..Report::default()
    };
    let mut prints = Vec::new();
    for (diags, print) in per_file {
        report.diagnostics.extend(diags);
        prints.extend(print);
    }

    let threshold = if cfg.near_dups {
        cfg.near_dup_threshold
    } else {
        // A threshold above 1.0 can never fire; the summary still
        // reports exact duplication.
        f64::INFINITY
    };
    let (summary, corpus_diags) = dedup::corpus_diagnostics(&prints, threshold);
    report.diagnostics.extend(corpus_diags);
    report.duplication = Some(summary);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus_units(language: Language, files: usize) -> Vec<SourceUnit> {
        let corpus = pigeon_corpus::generate(
            language,
            &pigeon_corpus::CorpusConfig::default().with_files(files),
        );
        corpus
            .docs
            .iter()
            .enumerate()
            .map(|(i, doc)| SourceUnit {
                name: format!("doc{i:05}"),
                source: doc.source.clone(),
            })
            .collect()
    }

    #[test]
    fn generated_corpora_audit_without_errors_or_warnings() {
        for language in Language::ALL {
            let units = corpus_units(language, 12);
            let report = audit_sources(language, &units, &AuditConfig::default());
            let denied = report.denied_count(Severity::Warning);
            assert_eq!(denied, 0, "{language:?}: {}", report.render_text());
            assert_eq!(report.units_audited, units.len());
            assert!(report.duplication.is_some());
        }
    }

    #[test]
    fn unparseable_source_is_a_parse_error() {
        let units = vec![SourceUnit {
            name: "bad.js".to_string(),
            source: "function ((((".to_string(),
        }];
        let report = audit_sources(Language::JavaScript, &units, &AuditConfig::default());
        assert!(report.diagnostics.iter().any(|d| d.code == "parse-error"));
        assert!(report.denied_count(Severity::Error) > 0);
    }

    #[test]
    fn report_is_byte_identical_across_jobs_values() {
        let units = corpus_units(Language::Python, 10);
        let baseline = audit_sources(
            Language::Python,
            &units,
            &AuditConfig {
                jobs: 1,
                ..AuditConfig::default()
            },
        );
        for jobs in [0, 2, 3, 7] {
            let report = audit_sources(
                Language::Python,
                &units,
                &AuditConfig {
                    jobs,
                    ..AuditConfig::default()
                },
            );
            assert_eq!(report.render_text(), baseline.render_text(), "jobs={jobs}");
            assert_eq!(report.render_json(), baseline.render_json(), "jobs={jobs}");
        }
    }
}
