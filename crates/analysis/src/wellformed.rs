//! AST well-formedness: structural arena invariants plus per-frontend
//! grammar invariants.
//!
//! The structural pass re-derives parent links, child indices, depths
//! and reachability from the child lists alone and compares them with
//! the arena's stored redundant fields — the same ground `Ast`'s own
//! `check_invariants` covers, but reported as positioned diagnostics
//! instead of a single opaque string. The grammar pass knows, for each
//! language frontend, which kinds are terminals, which are interior
//! nodes, what arity the grammar forces on operator-like kinds, and what
//! shape identifier values must have. The tables below encode what the
//! parsers in `crates/{js,java,python,csharp}` can actually emit — they
//! deliberately do **not** encode the narrower shapes the synthetic
//! generators happen to produce, so hand-written source audits cleanly.

use crate::diag::{Diagnostic, Severity};
use pigeon_ast::{Ast, NodeId};
use pigeon_corpus::Language;

/// Whether the grammar tables recognise `kind` as a leaf kind, an
/// interior kind, or neither (unknown kinds are left unchecked so the
/// frontends can grow without breaking the audit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KindClass {
    Terminal,
    Nonterminal,
    Unknown,
}

/// Terminal kinds each frontend emits (`TreeNode::leaf` call sites).
fn terminal_kinds(language: Language) -> &'static [&'static str] {
    match language {
        Language::JavaScript => &[
            "False",
            "Null",
            "Number",
            "Property",
            "String",
            "SymbolCatch",
            "SymbolDefun",
            "SymbolFunarg",
            "SymbolLambda",
            "SymbolRef",
            "SymbolVar",
            "True",
        ],
        Language::Java => &[
            "BooleanLit",
            "IntLit",
            "NameCall",
            "NameClass",
            "NameField",
            "NameMethod",
            "NameParam",
            "NameRef",
            "NameVar",
            "NullLit",
            "PrimitiveType",
            "StringLit",
            "TypeName",
        ],
        Language::Python => &[
            "AttrName",
            "Name",
            "NameConstant",
            "NameFunc",
            "NameParam",
            "NameStore",
            "Num",
            "Str",
        ],
        Language::CSharp => &[
            "FalseLiteral",
            "Identifier",
            "IdentifierName",
            "Modifier",
            "Name",
            "NullLiteral",
            "NumericLiteral",
            "PredefinedType",
            "StringLiteral",
            "TrueLiteral",
            "TypeName",
        ],
    }
}

/// Interior kinds each frontend emits with a fixed, non-operator name
/// (`TreeNode::inner` call sites). Operator families with formatted
/// names (`Binary+`, `Assign-=`, …) are matched by prefix instead.
fn nonterminal_kinds(language: Language) -> &'static [&'static str] {
    match language {
        Language::JavaScript => &[
            "Array",
            "Arrow",
            "Block",
            "Call",
            "Case",
            "Catch",
            "Conditional",
            "Default",
            "Defun",
            "Do",
            "Dot",
            "Else",
            "Finally",
            "For",
            "ForIn",
            "ForOf",
            "Function",
            "If",
            "New",
            "Object",
            "ObjectProp",
            "Return",
            "Seq",
            "Sub",
            "Switch",
            "Throw",
            "Toplevel",
            "Try",
            "VarDef",
            "While",
        ],
        Language::Java => &[
            "ArrayAccess",
            "ArrayCreation",
            "ArrayType",
            "Block",
            "Case",
            "Cast",
            "ClassDecl",
            "ClassType",
            "CompilationUnit",
            "Conditional",
            "ConstructorDecl",
            "Default",
            "Do",
            "ExpressionStmt",
            "Extends",
            "FieldDecl",
            "Finally",
            "For",
            "If",
            "Implements",
            "InstanceOf",
            "LocalVar",
            "MethodCall",
            "MethodDecl",
            "ObjectCreation",
            "Parameter",
            "Return",
            "Switch",
            "Throw",
            "Throws",
            "Try",
            "TypeArgs",
            "VariableDeclarator",
            "While",
        ],
        Language::Python => &[
            "Assign",
            "Attribute",
            "Base",
            "Body",
            "Call",
            "ClassDef",
            "DefaultParam",
            "Delete",
            "Dict",
            "DictItem",
            "ExceptHandler",
            "ExceptType",
            "Expr",
            "Finally",
            "For",
            "FunctionDef",
            "Global",
            "If",
            "IfExp",
            "Import",
            "ImportFrom",
            "Lambda",
            "List",
            "Lower",
            "Module",
            "OrElse",
            "Raise",
            "Return",
            "Slice",
            "Subscript",
            "Try",
            "Tuple",
            "TupleStore",
            "Upper",
            "While",
            "With",
        ],
        Language::CSharp => &[
            "AccessorList",
            "Argument",
            "ArgumentList",
            "ArrowExpressionClause",
            "ArrayType",
            "AsExpression",
            "BaseList",
            "Block",
            "BracketedArgumentList",
            "CaseSwitchLabel",
            "CatchClause",
            "ClassDeclaration",
            "CoalesceExpression",
            "CompilationUnit",
            "ConstructorDeclaration",
            "DefaultSwitchLabel",
            "DoStatement",
            "ElementAccessExpression",
            "EqualsValueClause",
            "ExpressionStatement",
            "FieldDeclaration",
            "FinallyClause",
            "ForEachStatement",
            "ForStatement",
            "IfStatement",
            "InvocationExpression",
            "IsExpression",
            "LocalDeclarationStatement",
            "MethodDeclaration",
            "NamespaceDeclaration",
            "NullableType",
            "ObjectCreationExpression",
            "ParameterList",
            "Parameter",
            "PropertyDeclaration",
            "ReturnStatement",
            "SimpleMemberAccessExpression",
            "SwitchStatement",
            "ThrowStatement",
            "TryStatement",
            "TypeArgumentList",
            "VariableDeclaration",
            "VariableDeclarator",
            "WhileStatement",
        ],
    }
}

/// Formatted operator-kind prefixes that are always interior nodes.
fn nonterminal_prefixes(language: Language) -> &'static [&'static str] {
    match language {
        Language::JavaScript => &["Assign", "Binary", "UnaryPrefix", "UnaryPostfix"],
        Language::Java => &["Assign", "Binary", "UnaryPrefix", "UnaryPostfix"],
        Language::Python => &["AugAssign", "BinOp", "BoolOp", "Compare", "UnaryOp"],
        Language::CSharp => &[
            "AssignmentExpression",
            "BinaryExpression",
            "PrefixUnaryExpression",
            "PostfixUnaryExpression",
        ],
    }
}

fn classify_kind(language: Language, kind: &str) -> KindClass {
    if terminal_kinds(language).contains(&kind) {
        return KindClass::Terminal;
    }
    if nonterminal_kinds(language).contains(&kind)
        || nonterminal_prefixes(language)
            .iter()
            .any(|p| kind.starts_with(p))
    {
        return KindClass::Nonterminal;
    }
    KindClass::Unknown
}

/// Grammar-forced child-count bounds `(min, max)` for `kind`, or `None`
/// when the grammar admits any count. Only bounds the parser itself
/// cannot violate are listed; generator-specific narrower shapes are
/// intentionally excluded.
fn arity_bounds(language: Language, kind: &str) -> Option<(usize, Option<usize>)> {
    let exactly = |n: usize| Some((n, Some(n)));
    // Operator families are shared across languages: binary forms take
    // exactly two operands, unary forms exactly one.
    let binary_prefixes: &[&str] = match language {
        Language::JavaScript | Language::Java => &["Assign", "Binary"],
        Language::Python => &["AugAssign", "BinOp", "BoolOp", "Compare"],
        Language::CSharp => &["AssignmentExpression", "BinaryExpression"],
    };
    let unary_prefixes: &[&str] = match language {
        Language::JavaScript | Language::Java => &["UnaryPrefix", "UnaryPostfix"],
        Language::Python => &["UnaryOp"],
        Language::CSharp => &["PrefixUnaryExpression", "PostfixUnaryExpression"],
    };
    if binary_prefixes.iter().any(|p| kind.starts_with(p)) {
        return exactly(2);
    }
    if unary_prefixes.iter().any(|p| kind.starts_with(p)) {
        return exactly(1);
    }
    match language {
        Language::JavaScript => match kind {
            "Conditional" => exactly(3),
            "Dot" | "Sub" | "Do" => exactly(2),
            "Throw" => exactly(1),
            "VarDef" => Some((1, Some(2))),
            "Call" | "New" | "Seq" => Some((1, None)),
            _ => None,
        },
        Language::Java => match kind {
            "Conditional" => exactly(3),
            "ArrayAccess" | "ArrayCreation" | "Cast" | "Do" | "InstanceOf" | "Parameter"
            | "While" => exactly(2),
            "ExpressionStmt" | "Extends" | "Finally" | "Throw" => exactly(1),
            "VariableDeclarator" => Some((1, Some(2))),
            "LocalVar" | "FieldDecl" => Some((2, None)),
            _ => None,
        },
        Language::Python => match kind {
            "IfExp" => exactly(3),
            "Attribute" | "DefaultParam" | "DictItem" | "Subscript" => exactly(2),
            "Base" | "Delete" | "ExceptType" | "Expr" | "Lower" | "Upper" => exactly(1),
            "Assign" => Some((2, None)),
            "OrElse" | "Global" | "Import" => Some((1, None)),
            _ => None,
        },
        Language::CSharp => match kind {
            "AsExpression"
            | "CoalesceExpression"
            | "DoStatement"
            | "ElementAccessExpression"
            | "InvocationExpression"
            | "IsExpression"
            | "Parameter"
            | "SimpleMemberAccessExpression"
            | "WhileStatement" => exactly(2),
            "Argument"
            | "ArrowExpressionClause"
            | "ArrayType"
            | "BracketedArgumentList"
            | "EqualsValueClause"
            | "ExpressionStatement"
            | "FinallyClause"
            | "NullableType"
            | "ThrowStatement" => exactly(1),
            "VariableDeclarator" => Some((1, Some(2))),
            "VariableDeclaration" => Some((2, None)),
            _ => None,
        },
    }
}

/// Interior kinds the grammar allows to be childless (`[]`, `{}`,
/// `break;`, empty parameter lists, …). Any other childless interior
/// node is suspicious enough to warn about.
fn childless_ok(language: Language, kind: &str) -> bool {
    let list: &[&str] = match language {
        Language::JavaScript => &["Array", "Block", "Object", "Toplevel"],
        Language::Java => &["Block", "CompilationUnit"],
        Language::Python => &["Dict", "List", "Module", "Tuple"],
        Language::CSharp => &["ArgumentList", "Block", "CompilationUnit", "ParameterList"],
    };
    list.contains(&kind)
}

/// Kinds whose value must look like an identifier. The second set
/// additionally admits `.`-joined qualified names.
fn identifier_kinds(language: Language) -> (&'static [&'static str], &'static [&'static str]) {
    match language {
        Language::JavaScript => (
            &[
                "Property",
                "SymbolCatch",
                "SymbolDefun",
                "SymbolFunarg",
                "SymbolLambda",
                "SymbolRef",
                "SymbolVar",
            ],
            &[],
        ),
        Language::Java => (
            &[
                "NameCall",
                "NameClass",
                "NameField",
                "NameMethod",
                "NameParam",
                "NameRef",
                "NameVar",
            ],
            &["TypeName"],
        ),
        Language::Python => (
            &[
                "AttrName",
                "Name",
                "NameConstant",
                "NameFunc",
                "NameParam",
                "NameStore",
            ],
            &[],
        ),
        Language::CSharp => (
            &["Identifier", "IdentifierName", "Modifier"],
            &["Name", "TypeName"],
        ),
    }
}

fn is_identifier(value: &str, allow_dots: bool) -> bool {
    let mut chars = value.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    if !(first.is_ascii_alphabetic() || first == '_' || first == '$') {
        return false;
    }
    value
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$' || (allow_dots && c == '.'))
}

/// Runs both well-formedness passes over `ast`, reporting findings
/// against `unit`.
pub fn check_ast(language: Language, unit: &str, ast: &Ast) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_structure(language, unit, ast, &mut diags);
    check_grammar(language, unit, ast, &mut diags);
    diags
}

/// Re-derives the arena's redundant structure from the child lists and
/// flags every disagreement.
fn check_structure(language: Language, unit: &str, ast: &Ast, diags: &mut Vec<Diagnostic>) {
    let mut err = |code: &'static str, node: NodeId, message: String| {
        diags.push(
            Diagnostic::new(code, Severity::Error, unit, message)
                .with_language(language)
                .with_node(node.index() as u32),
        );
    };
    let ids: Vec<NodeId> = ast.preorder().collect();
    let mut times_child = vec![0usize; ids.len()];
    for &id in &ids {
        for (pos, &child) in ast.children(id).iter().enumerate() {
            times_child[child.index()] += 1;
            if times_child[child.index()] > 1 {
                err(
                    "ast-duplicate-child",
                    child,
                    format!(
                        "node appears in more than one child list (again under node {})",
                        id.index()
                    ),
                );
                continue;
            }
            if ast.parent(child) != Some(id) {
                err(
                    "ast-parent-link",
                    child,
                    format!(
                        "stored parent {:?} disagrees with actual parent {}",
                        ast.parent(child).map(|p| p.index()),
                        id.index()
                    ),
                );
            }
            if ast.child_index(child) != pos {
                err(
                    "ast-child-index",
                    child,
                    format!(
                        "stored child index {} but node is child #{} of node {}",
                        ast.child_index(child),
                        pos,
                        id.index()
                    ),
                );
            }
            if ast.depth(child) != ast.depth(id) + 1 {
                err(
                    "ast-depth",
                    child,
                    format!(
                        "stored depth {} but parent {} has depth {}",
                        ast.depth(child),
                        id.index(),
                        ast.depth(id)
                    ),
                );
            }
        }
        if ast.is_terminal(id) && !ast.children(id).is_empty() {
            err(
                "ast-terminal-children",
                id,
                format!(
                    "terminal node (kind {}) has {} children",
                    ast.kind(id).as_str(),
                    ast.children(id).len()
                ),
            );
        }
    }
    let root = ast.root();
    if times_child[root.index()] > 0 {
        err(
            "ast-root-is-child",
            root,
            "root appears in a child list".to_string(),
        );
    }
    if ast.parent(root).is_some() {
        err(
            "ast-parent-link",
            root,
            "root has a stored parent".to_string(),
        );
    }
    for &id in &ids {
        if id != root && times_child[id.index()] == 0 {
            err(
                "ast-orphan",
                id,
                format!(
                    "node (kind {}) is unreachable from the root",
                    ast.kind(id).as_str()
                ),
            );
        }
    }
}

/// Checks the per-language grammar tables: kind classification, forced
/// arities, childless interior nodes and identifier value shape.
fn check_grammar(language: Language, unit: &str, ast: &Ast, diags: &mut Vec<Diagnostic>) {
    let (ident_plain, ident_dotted) = identifier_kinds(language);
    for id in ast.preorder() {
        let kind = ast.kind(id).as_str();
        let terminal = ast.is_terminal(id);
        match classify_kind(language, kind) {
            KindClass::Terminal if !terminal => diags.push(
                Diagnostic::new(
                    "ast-kind-class",
                    Severity::Error,
                    unit,
                    format!("kind {kind} is a {language:?} terminal but the node carries no value"),
                )
                .with_language(language)
                .with_node(id.index() as u32),
            ),
            KindClass::Nonterminal if terminal => diags.push(
                Diagnostic::new(
                    "ast-kind-class",
                    Severity::Error,
                    unit,
                    format!(
                        "kind {kind} is a {language:?} interior kind but the node carries value {:?}",
                        ast.value(id).map(|v| v.as_str().to_string()).unwrap_or_default()
                    ),
                )
                .with_language(language)
                .with_node(id.index() as u32),
            ),
            _ => {}
        }
        if !terminal {
            let n = ast.children(id).len();
            if let Some((min, max)) = arity_bounds(language, kind) {
                let bad = n < min || max.is_some_and(|m| n > m);
                if bad {
                    let expected = match max {
                        Some(m) if m == min => format!("{min}"),
                        Some(m) => format!("{min}..={m}"),
                        None => format!("at least {min}"),
                    };
                    diags.push(
                        Diagnostic::new(
                            "ast-arity",
                            Severity::Error,
                            unit,
                            format!("kind {kind} requires {expected} children, found {n}"),
                        )
                        .with_language(language)
                        .with_node(id.index() as u32),
                    );
                }
            } else if n == 0
                && classify_kind(language, kind) == KindClass::Nonterminal
                && !childless_ok(language, kind)
            {
                diags.push(
                    Diagnostic::new(
                        "ast-empty-nonterminal",
                        Severity::Warning,
                        unit,
                        format!("interior kind {kind} has no children"),
                    )
                    .with_language(language)
                    .with_node(id.index() as u32),
                );
            }
        } else if let Some(value) = ast.value(id) {
            let dotted = ident_dotted.contains(&kind);
            if (ident_plain.contains(&kind) || dotted) && !is_identifier(value.as_str(), dotted) {
                diags.push(
                    Diagnostic::new(
                        "ast-ident-shape",
                        Severity::Error,
                        unit,
                        format!(
                            "kind {kind} carries non-identifier value {:?}",
                            value.as_str()
                        ),
                    )
                    .with_language(language)
                    .with_node(id.index() as u32),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pigeon_ast::AstBuilder;

    #[test]
    fn clean_tree_produces_no_diagnostics() {
        let ast = Language::JavaScript
            .parse("function f(a) { return a + 1; }")
            .unwrap();
        assert_eq!(check_ast(Language::JavaScript, "u", &ast), Vec::new());
    }

    #[test]
    fn corrupted_parent_link_is_reported() {
        let mut ast = Language::JavaScript
            .parse("function f(a) { return a; }")
            .unwrap();
        let victim = ast.preorder().nth(2).unwrap();
        ast.corrupt_parent_for_tests(victim, None);
        let diags = check_ast(Language::JavaScript, "u", &ast);
        assert!(diags.iter().any(|d| d.code == "ast-parent-link"));
    }

    #[test]
    fn corrupted_child_index_is_reported() {
        let mut ast = Language::Java
            .parse("class A { int f(int x) { return x; } }")
            .unwrap();
        let victim = ast.preorder().nth(3).unwrap();
        ast.corrupt_child_index_for_tests(victim, 99);
        let diags = check_ast(Language::Java, "u", &ast);
        assert!(diags.iter().any(|d| d.code == "ast-child-index"));
    }

    #[test]
    fn nonterminal_kind_with_value_is_reported() {
        // A `While` carrying a value is grammatically impossible output
        // for the JS frontend.
        let mut b = AstBuilder::new("Toplevel");
        b.token("While", "x");
        let ast = b.finish();
        let diags = check_ast(Language::JavaScript, "u", &ast);
        assert!(diags.iter().any(|d| d.code == "ast-kind-class"));
    }

    #[test]
    fn terminal_kind_without_value_is_reported() {
        let mut b = AstBuilder::new("Module");
        b.start_node("Name");
        b.finish_node();
        let ast = b.finish();
        let diags = check_ast(Language::Python, "u", &ast);
        assert!(diags.iter().any(|d| d.code == "ast-kind-class"));
    }

    #[test]
    fn binary_operator_with_one_child_is_reported() {
        let mut b = AstBuilder::new("Toplevel");
        b.start_node("Binary+");
        b.token("SymbolRef", "a");
        b.finish_node();
        let ast = b.finish();
        let diags = check_ast(Language::JavaScript, "u", &ast);
        assert!(diags.iter().any(|d| d.code == "ast-arity"));
    }

    #[test]
    fn childless_interior_node_is_a_warning() {
        let mut b = AstBuilder::new("CompilationUnit");
        b.start_node("IfStatement");
        b.finish_node();
        let ast = b.finish();
        let diags = check_ast(Language::CSharp, "u", &ast);
        let d = diags
            .iter()
            .find(|d| d.code == "ast-empty-nonterminal")
            .expect("warning fires");
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn malformed_identifier_value_is_reported() {
        let mut b = AstBuilder::new("Module");
        b.token("Name", "not an identifier!");
        let ast = b.finish();
        let diags = check_ast(Language::Python, "u", &ast);
        assert!(diags.iter().any(|d| d.code == "ast-ident-shape"));
    }

    #[test]
    fn all_languages_parse_their_own_corpora_cleanly() {
        for language in Language::ALL {
            let corpus = pigeon_corpus::generate(
                language,
                &pigeon_corpus::CorpusConfig::default().with_files(8),
            );
            for (i, doc) in corpus.docs.iter().enumerate() {
                let ast = language.parse(&doc.source).unwrap();
                let diags = check_ast(language, &format!("doc{i}"), &ast);
                assert!(diags.is_empty(), "{language:?} doc{i}: {diags:?}");
            }
        }
    }
}
