//! Sanity lints over trained models.
//!
//! A model file can be syntactically valid JSON and still be junk: a
//! NaN that crept in through a degenerate learning rate, weight tables
//! that are entirely zero because training never ran, candidate tables
//! that can never propose a label, or ids pointing outside the
//! vocabularies it ships with. Each lint here catches one of those
//! failure shapes. Findings over large tables are aggregated — one
//! diagnostic per failure shape with a count and a smallest-key example
//! — so the output stays deterministic regardless of hash-map iteration
//! order.

use crate::diag::{Diagnostic, Severity};
use pigeon_crf::{artifact, CrfModel};
use pigeon_word2vec::SgnsModel;

/// Lints a trained CRF model against the vocabularies it is deployed
/// with (`num_features` / `num_labels` are the vocabulary sizes).
pub fn lint_crf(
    unit: &str,
    model: &CrfModel,
    num_features: usize,
    num_labels: usize,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    if let Err(issue) = model.validate(num_features, num_labels) {
        diags.push(Diagnostic::new(
            issue.code,
            Severity::Error,
            unit,
            issue.message,
        ));
    }

    // Weight health: non-finite entries are errors; an all-zero or
    // empty table means the model never learned anything.
    let mut non_finite = 0usize;
    let mut non_finite_example: Option<(u32, u32, u32)> = None;
    let mut total = 0usize;
    let mut non_zero = 0usize;
    for (path, a, b, w) in model.pair_weight_entries() {
        total += 1;
        if !w.is_finite() {
            non_finite += 1;
            let key = (path, a, b);
            if non_finite_example.is_none_or(|e| key < e) {
                non_finite_example = Some(key);
            }
        } else if w != 0.0 {
            non_zero += 1;
        }
    }
    for (path, l, w) in model.unary_weight_entries() {
        total += 1;
        if !w.is_finite() {
            non_finite += 1;
            let key = (path, l, u32::MAX);
            if non_finite_example.is_none_or(|e| key < e) {
                non_finite_example = Some(key);
            }
        } else if w != 0.0 {
            non_zero += 1;
        }
    }
    if non_finite > 0 {
        let (path, a, b) = non_finite_example.expect("example recorded with count");
        diags.push(Diagnostic::new(
            "model-nonfinite-weight",
            Severity::Error,
            unit,
            format!(
                "{non_finite} of {total} weights are NaN or infinite \
                 (first by key: path {path}, labels {a}/{b})"
            ),
        ));
    }
    if total == 0 {
        diags.push(Diagnostic::new(
            "model-dead-table",
            Severity::Warning,
            unit,
            "model has no weights at all",
        ));
    } else if non_zero == 0 && non_finite == 0 {
        diags.push(Diagnostic::new(
            "model-dead-table",
            Severity::Warning,
            unit,
            format!("all {total} weights are exactly zero"),
        ));
    }

    // Label statistics: an all-zero frequency table cannot seed
    // candidates or priors.
    let labels_seen = model.label_count_table().iter().filter(|&&c| c > 0).count();
    if !model.label_count_table().is_empty() && labels_seen == 0 {
        diags.push(Diagnostic::new(
            "model-dead-labels",
            Severity::Warning,
            unit,
            "every label has training frequency zero",
        ));
    }

    // Candidate tables: inference proposes labels from these; an empty
    // global fallback means unknown nodes can never be labeled.
    if model.max_candidates() == 0 {
        diags.push(Diagnostic::new(
            "model-empty-candidates",
            Severity::Error,
            unit,
            "max_candidates is zero: inference can propose nothing",
        ));
    }
    if model.global_candidate_labels().is_empty() && num_labels > 0 {
        diags.push(Diagnostic::new(
            "model-empty-candidates",
            Severity::Error,
            unit,
            "global candidate list is empty",
        ));
    }
    let empty_lists = model
        .candidate_entries()
        .filter(|(_, suggestions)| suggestions.is_empty())
        .count();
    if empty_lists > 0 {
        diags.push(Diagnostic::new(
            "model-empty-candidates",
            Severity::Warning,
            unit,
            format!("{empty_lists} candidate entries carry no suggestions"),
        ));
    }

    // Vocabulary coverage: ids referenced by the weight tables, as a
    // fraction of the shipped vocabularies. Low coverage is not wrong —
    // training legitimately skips features seen only between known
    // nodes — but a collapsed value is worth a look.
    if num_features > 0 && total > 0 {
        let mut feature_used = vec![false; num_features];
        let mut label_used = vec![false; num_labels];
        let mark = |slot: &mut Vec<bool>, id: u32| {
            if let Some(s) = slot.get_mut(id as usize) {
                *s = true;
            }
        };
        for (path, a, b, _) in model.pair_weight_entries() {
            mark(&mut feature_used, path);
            mark(&mut label_used, a);
            mark(&mut label_used, b);
        }
        for (path, l, _) in model.unary_weight_entries() {
            mark(&mut feature_used, path);
            mark(&mut label_used, l);
        }
        let feature_coverage =
            feature_used.iter().filter(|&&u| u).count() as f64 / num_features as f64;
        let label_coverage = if num_labels == 0 {
            1.0
        } else {
            label_used.iter().filter(|&&u| u).count() as f64 / num_labels as f64
        };
        if feature_coverage < 0.5 {
            diags.push(Diagnostic::new(
                "model-vocab-coverage",
                Severity::Info,
                unit,
                format!(
                    "weights reference {:.0}% of the {num_features}-entry feature vocabulary",
                    feature_coverage * 100.0
                ),
            ));
        }
        if label_coverage < 0.5 {
            diags.push(Diagnostic::new(
                "model-vocab-coverage",
                Severity::Info,
                unit,
                format!(
                    "weights reference {:.0}% of the {num_labels}-entry label vocabulary",
                    label_coverage * 100.0
                ),
            ));
        }
    }

    diags
}

/// Lints a compiled binary model artifact (`.pgnc`).
///
/// Container integrity — magic, version, section bounds, checksums,
/// CSR structure, id ranges, weight finiteness, cap bounds — is
/// enforced by the decoder itself; any violation surfaces here as one
/// `artifact-format` error naming the problem. A file that decodes
/// cleanly then gets the same health lints as a JSON model (dead
/// tables, dead labels, candidate coverage) via [`lint_crf`], which
/// reads the artifact-backed model through its frozen CSR arrays, plus
/// an informational section-layout summary.
pub fn lint_artifact(unit: &str, bytes: &[u8]) -> Vec<Diagnostic> {
    let art = match artifact::read_artifact(bytes) {
        Ok(art) => art,
        Err(message) => {
            return vec![Diagnostic::new(
                "artifact-format",
                Severity::Error,
                unit,
                message,
            )];
        }
    };
    let mut diags = Vec::new();
    // The reader re-verifies checksums, so reaching this point means
    // every section is intact; summarise the layout for the report.
    if let Ok(reader) = artifact::Reader::parse(bytes) {
        let sections = reader.sections();
        let payload: u64 = sections.iter().map(|s| s.len).sum();
        diags.push(Diagnostic::new(
            "artifact-layout",
            Severity::Info,
            unit,
            format!(
                "{} quantization, {} sections, {payload} payload bytes in a \
                 {}-byte file, all checksums verified",
                art.quant.name(),
                sections.len(),
                bytes.len()
            ),
        ));
    }
    diags.extend(lint_crf(
        unit,
        &art.model,
        art.features.len(),
        art.labels.len(),
    ));
    diags
}

/// Lints a trained SGNS embedding model: table shapes, non-finite
/// entries, and dead statistics.
pub fn lint_sgns(unit: &str, model: &SgnsModel) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let dim = model.dim();
    let words = model.num_words();
    let contexts = model.num_contexts();

    if words == 0 || dim == 0 {
        diags.push(Diagnostic::new(
            "model-dead-table",
            Severity::Warning,
            unit,
            format!("embedding table is degenerate ({words} words × {dim} dims)"),
        ));
    }
    for (label, table, rows) in [
        ("word", model.word_table(), words),
        ("context", model.ctx_table(), contexts),
    ] {
        if table.len() != rows * dim {
            diags.push(Diagnostic::new(
                "model-table-shape",
                Severity::Error,
                unit,
                format!(
                    "{label} table holds {} floats, expected {rows} rows × {dim} dims",
                    table.len()
                ),
            ));
        }
        let non_finite = table.iter().filter(|v| !v.is_finite()).count();
        if non_finite > 0 {
            diags.push(Diagnostic::new(
                "model-nonfinite-weight",
                Severity::Error,
                unit,
                format!(
                    "{non_finite} of {} {label} embedding entries are NaN or infinite",
                    table.len()
                ),
            ));
        }
    }
    if words > 0 && model.word_count_table().iter().all(|&c| c == 0) {
        diags.push(Diagnostic::new(
            "model-dead-labels",
            Severity::Warning,
            unit,
            "every word has recorded frequency zero",
        ));
    }
    diags
}
