//! Classic data-flow analyses over the per-function CFGs of
//! [`crate::cfg`]: reaching definitions, liveness, and last-use chains,
//! solved by fixed-point iteration on bitsets.
//!
//! Two consumers share one engine run:
//!
//! * **Lints** ([`lint`]): four def-use diagnostics with stable codes
//!   (see [`LINT_CODES`]) — `use-before-def`, `dead-store`,
//!   `unused-binding`, `write-write-shadow` — cross-checked against the
//!   binding groups of [`crate::scopes::resolve`].
//! * **Flow edges** ([`flow_edges`]): typed `last-use` / `last-write`
//!   edges between variable occurrences, which `pigeon-core` turns into
//!   the edge-typed path-contexts behind `--dataflow-contexts`.
//!
//! # Determinism
//!
//! Everything is a pure function of the AST. Variables are numbered in
//! the resolver's (name, scope) order, CFG nodes in lowering order, and
//! occurrences in evaluation order; the fixed-point loops sweep nodes in
//! index order until stable, which converges to the unique least
//! solution regardless of sweep order. No hashing, no parallelism —
//! byte-identical output for every `--jobs` value.
//!
//! # Soundness stance
//!
//! The CFG over-approximates control flow (see `cfg.rs`), so reaching
//! sets only ever grow. Every lint is phrased so that extra paths
//! *suppress* it: `use-before-def` requires that **no** real definition
//! reaches the read, `dead-store` that the value is live on **no**
//! outgoing path. Variables captured by a nested function scope are
//! excluded from flow lints entirely — a closure may read or write them
//! at any time — but still participate in `unused-binding`, which
//! counts reads across all scopes.
//!
//! Within one CFG node, each `part` (statement) emits its reads before
//! its writes: the right-hand side of an assignment is evaluated before
//! the store, and `i++` both reads and writes. This is exact for the
//! single-assignment statements of the four frontends.

use crate::cfg::{build_cfgs, Cfg, ENTRY};
use crate::diag::{Diagnostic, Severity};
use crate::scopes::{resolve, ResolvedGroup, ScopeTree};
use pigeon_ast::{Ast, NodeId};
use pigeon_core::{FlowEdge, FlowKind};
use pigeon_corpus::Language;
use pigeon_telemetry as telemetry;
use std::collections::BTreeMap;
use std::time::Instant;

/// Histogram family for engine timing, split by `phase` label
/// (`cfg` = scope + CFG construction, `solve` = fixed points + report).
pub const DATAFLOW_MICROS: &str = "pigeon_dataflow_micros";

/// The four lint codes this module emits, with their one-line
/// descriptions (stable; documented in README and `--list-codes`).
pub const LINT_CODES: [(&str, &str); 4] = [
    (
        "use-before-def",
        "a variable is read on a path where no assignment has reached it",
    ),
    (
        "dead-store",
        "an assigned value can never be read on any outgoing path",
    ),
    (
        "unused-binding",
        "a declared variable is never read anywhere",
    ),
    (
        "write-write-shadow",
        "an assigned value is always overwritten before being read",
    ),
];

/// Registers the metric families this module emits so `/v1/metrics`
/// exposes them (as zeros) before the first document is analysed.
pub fn register_metrics() {
    telemetry::describe(
        DATAFLOW_MICROS,
        "Data-flow engine wall time in microseconds, by phase",
    );
    for phase in ["cfg", "solve"] {
        telemetry::histogram(
            DATAFLOW_MICROS,
            &[("phase", phase)],
            telemetry::PHASE_BOUNDS,
        );
    }
}

/// What one variable occurrence does, before expansion into the
/// read/write stream.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Access {
    Use,
    Def(DefKind),
    /// Reads the old value, then writes (`i++`, `x += 1`).
    UseDef(DefKind),
    /// Not a variable access at all: a property-position leaf
    /// (`obj.name`) that merely shares the variable's text. The
    /// resolver groups it by name; the flow engine must not.
    Skip,
}

/// Why a write exists. Only explicit value stores (`Init`, `Assign`,
/// `Update`) are dead-store candidates: a bare declaration, parameter,
/// or loop/with/catch binding stores no value the programmer wrote.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DefKind {
    Param,
    Catch,
    LoopBinding,
    With,
    Decl,
    Init,
    Assign,
    Update,
}

impl DefKind {
    fn is_store(self) -> bool {
        matches!(self, DefKind::Init | DefKind::Assign | DefKind::Update)
    }
}

fn kind_str(ast: &Ast, id: NodeId) -> &'static str {
    ast.kind(id).as_str()
}

fn parent_kind(ast: &Ast, id: NodeId) -> &'static str {
    ast.parent(id).map_or("", |p| kind_str(ast, p))
}

fn is_first_child(ast: &Ast, id: NodeId) -> bool {
    ast.child_index(id) == 0
}

fn is_incdec(kind: &str) -> bool {
    kind.ends_with("++") || kind.ends_with("--")
}

/// Classifies one variable-occurrence leaf. Unknown shapes default to
/// `Use`: the resolver groups *any* valued leaf whose text matches a
/// declared name (e.g. a property access), and treating those as reads
/// can only suppress findings, never invent them.
fn classify(language: Language, ast: &Ast, leaf: NodeId) -> Access {
    let kind = kind_str(ast, leaf);
    let parent = parent_kind(ast, leaf);
    // Property-position leaves: `obj.name` names a member, not the
    // local `name`.
    match (language, kind) {
        (Language::JavaScript, "Property")
        | (Language::Java, "NameField")
        | (Language::Python, "AttrName") => return Access::Skip,
        (Language::CSharp, "IdentifierName")
            if parent == "SimpleMemberAccessExpression" && !is_first_child(ast, leaf) =>
        {
            return Access::Skip
        }
        _ => {}
    }
    match language {
        Language::JavaScript => match kind {
            "SymbolFunarg" => Access::Def(DefKind::Param),
            "SymbolCatch" => Access::Def(DefKind::Catch),
            "SymbolVar" => {
                // VarDef[SymbolVar, init?]; a VarDef directly under
                // ForIn/ForOf is the loop binding.
                let grandparent = ast.parent(leaf).map_or("", |p| parent_kind(ast, p));
                if matches!(grandparent, "ForIn" | "ForOf") {
                    Access::Def(DefKind::LoopBinding)
                } else if ast.parent(leaf).is_some_and(|p| ast.children(p).len() >= 2) {
                    Access::Def(DefKind::Init)
                } else {
                    Access::Def(DefKind::Decl)
                }
            }
            "SymbolRef" => {
                if parent == "Assign=" && is_first_child(ast, leaf) {
                    Access::Def(DefKind::Assign)
                } else if (parent.starts_with("Assign") && is_first_child(ast, leaf))
                    || ((parent.starts_with("UnaryPrefix") || parent.starts_with("UnaryPostfix"))
                        && is_incdec(parent))
                {
                    Access::UseDef(DefKind::Update)
                } else if matches!(parent, "ForIn" | "ForOf") && is_first_child(ast, leaf) {
                    // `for (x of xs)` re-binding an existing variable.
                    Access::Def(DefKind::LoopBinding)
                } else {
                    Access::Use
                }
            }
            _ => Access::Use,
        },
        Language::Java => match kind {
            "NameParam" => {
                if parent == "Catch" {
                    Access::Def(DefKind::Catch)
                } else {
                    Access::Def(DefKind::Param)
                }
            }
            "NameVar" => {
                if parent == "ForEach" {
                    Access::Def(DefKind::LoopBinding)
                } else if ast.parent(leaf).is_some_and(|p| ast.children(p).len() >= 2) {
                    Access::Def(DefKind::Init)
                } else {
                    Access::Def(DefKind::Decl)
                }
            }
            "NameRef" => {
                if parent == "Assign=" && is_first_child(ast, leaf) {
                    Access::Def(DefKind::Assign)
                } else if (parent.starts_with("Assign") && is_first_child(ast, leaf))
                    || ((parent.starts_with("UnaryPrefix") || parent.starts_with("UnaryPostfix"))
                        && is_incdec(parent))
                {
                    Access::UseDef(DefKind::Update)
                } else {
                    Access::Use
                }
            }
            _ => Access::Use,
        },
        Language::Python => match kind {
            "NameParam" => Access::Def(DefKind::Param),
            "NameStore" => match parent {
                "For" => Access::Def(DefKind::LoopBinding),
                "With" => Access::Def(DefKind::With),
                "ExceptHandler" => Access::Def(DefKind::Catch),
                "TupleStore" => {
                    let grandparent = ast.parent(leaf).map_or("", |p| parent_kind(ast, p));
                    if grandparent == "For" {
                        Access::Def(DefKind::LoopBinding)
                    } else {
                        Access::Def(DefKind::Assign)
                    }
                }
                p if p.starts_with("AugAssign") => Access::UseDef(DefKind::Update),
                // `Assign` and any other store position.
                _ => Access::Def(DefKind::Assign),
            },
            _ => Access::Use,
        },
        Language::CSharp => match kind {
            "Identifier" => match parent {
                "Parameter" => Access::Def(DefKind::Param),
                "CatchClause" => Access::Def(DefKind::Catch),
                "ForEachStatement" => Access::Def(DefKind::LoopBinding),
                "VariableDeclarator" => {
                    if ast.parent(leaf).is_some_and(|p| ast.children(p).len() >= 2) {
                        Access::Def(DefKind::Init)
                    } else {
                        Access::Def(DefKind::Decl)
                    }
                }
                _ => Access::Use,
            },
            "IdentifierName" => {
                if parent == "AssignmentExpression=" && is_first_child(ast, leaf) {
                    Access::Def(DefKind::Assign)
                } else if (parent.starts_with("AssignmentExpression") && is_first_child(ast, leaf))
                    || ((parent.starts_with("PrefixUnaryExpression")
                        || parent.starts_with("PostfixUnaryExpression"))
                        && is_incdec(parent))
                {
                    Access::UseDef(DefKind::Update)
                } else {
                    Access::Use
                }
            }
            _ => Access::Use,
        },
    }
}

/// A fixed-width bitset; the universes here (defs, reads, variables of
/// one function) are small, so `Vec<u64>` words beat any sparse set.
#[derive(Clone, PartialEq, Eq)]
struct Bits {
    words: Vec<u64>,
}

impl Bits {
    fn new(len: usize) -> Bits {
        Bits {
            words: vec![0; len.div_ceil(64)],
        }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    fn union(&mut self, other: &Bits) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    fn subtract(&mut self, other: &Bits) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Indices set in both `self` and `mask`, ascending.
    fn ones_in<'a>(&'a self, mask: &'a Bits) -> impl Iterator<Item = usize> + 'a {
        self.words
            .iter()
            .zip(&mask.words)
            .enumerate()
            .flat_map(|(wi, (a, b))| {
                let mut word = a & b;
                std::iter::from_fn(move || {
                    if word == 0 {
                        return None;
                    }
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(wi * 64 + bit)
                })
            })
    }
}

/// One entry of a node's read/write stream.
#[derive(Clone, Copy)]
enum Occ {
    Read {
        leaf: NodeId,
        var: u32,
        read_id: u32,
    },
    Write {
        leaf: NodeId,
        var: u32,
        def_id: u32,
        kind: DefKind,
    },
}

/// Everything the engine knows about one function after collection.
struct Func<'a> {
    cfg: &'a Cfg,
    /// Read/write stream per CFG node, in evaluation order.
    occs: Vec<Vec<Occ>>,
    names: Vec<String>,
    /// Reads per variable across *all* scopes (closure reads count).
    read_count: Vec<u32>,
    /// Any occurrence lives in a nested function scope.
    captured: Vec<bool>,
    /// Any def is a parameter or catch binding (unused-binding exempt).
    binding_exempt: Vec<bool>,
    /// First occurrence leaf per variable, for group-level findings.
    first_occurrence: Vec<NodeId>,
    def_leaf: Vec<NodeId>,
    def_node: Vec<usize>,
    def_kind: Vec<DefKind>,
    read_leaf: Vec<NodeId>,
    /// Def universe (`nvars` bottom bits, then real defs) per variable.
    var_defs: Vec<Bits>,
    /// Read universe per variable.
    var_reads: Vec<Bits>,
    nvars: usize,
}

/// Collects the per-node occurrence streams of one function.
/// `extras[v]` holds occurrences of variable `v` that live in *nested*
/// function scopes (closures): they stay out of this CFG's streams but
/// mark the variable captured and count towards its reads.
fn collect<'a>(
    language: Language,
    ast: &Ast,
    tree: &ScopeTree,
    groups: &[&ResolvedGroup],
    extras: &[Vec<NodeId>],
    cfg: &'a Cfg,
) -> Func<'a> {
    let nvars = groups.len();
    let mut var_of = vec![u32::MAX; ast.len()];
    let mut read_count = vec![0u32; nvars];
    let mut captured = vec![false; nvars];
    let mut binding_exempt = vec![false; nvars];
    let mut first_occurrence = Vec::with_capacity(nvars);
    let mut names = Vec::with_capacity(nvars);
    for (v, g) in groups.iter().enumerate() {
        names.push(g.name.clone());
        first_occurrence.push(g.occurrences[0]);
        for &leaf in g.occurrences.iter().chain(&extras[v]) {
            match classify(language, ast, leaf) {
                Access::Use | Access::UseDef(_) => read_count[v] += 1,
                Access::Def(_) | Access::Skip => {}
            }
            if let Access::Def(k) | Access::UseDef(k) = classify(language, ast, leaf) {
                if matches!(k, DefKind::Param | DefKind::Catch) {
                    binding_exempt[v] = true;
                }
            }
            if tree.scope_of(leaf) == cfg.scope {
                var_of[leaf.index()] = v as u32;
            } else {
                captured[v] = true;
            }
        }
    }

    let mut occs: Vec<Vec<Occ>> = vec![Vec::new(); cfg.nodes.len()];
    let mut def_leaf = Vec::new();
    let mut def_node = Vec::new();
    let mut def_kind = Vec::new();
    let mut def_var = Vec::new();
    let mut read_leaf = Vec::new();
    let mut read_var = Vec::new();
    for (n, node) in cfg.nodes.iter().enumerate() {
        for &part in &node.parts {
            // All reads of the part (in preorder), then all its writes:
            // a statement evaluates its right-hand side before storing.
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            let mut stack = vec![part];
            let mut leaves = Vec::new();
            while let Some(id) = stack.pop() {
                if ast.is_terminal(id) {
                    leaves.push(id);
                }
                for &c in ast.children(id).iter().rev() {
                    stack.push(c);
                }
            }
            for leaf in leaves {
                let v = var_of[leaf.index()];
                if v == u32::MAX {
                    continue;
                }
                match classify(language, ast, leaf) {
                    Access::Use => reads.push((leaf, v)),
                    Access::Def(k) => writes.push((leaf, v, k)),
                    Access::UseDef(k) => {
                        reads.push((leaf, v));
                        writes.push((leaf, v, k));
                    }
                    Access::Skip => {}
                }
            }
            for (leaf, var) in reads {
                let read_id = read_leaf.len() as u32;
                read_leaf.push(leaf);
                read_var.push(var);
                occs[n].push(Occ::Read { leaf, var, read_id });
            }
            for (leaf, var, kind) in writes {
                let def_id = def_leaf.len() as u32;
                def_leaf.push(leaf);
                def_node.push(n);
                def_kind.push(kind);
                def_var.push(var);
                occs[n].push(Occ::Write {
                    leaf,
                    var,
                    def_id,
                    kind,
                });
            }
        }
    }

    let ndefs = nvars + def_leaf.len();
    let mut var_defs: Vec<Bits> = (0..nvars)
        .map(|v| {
            let mut b = Bits::new(ndefs);
            b.set(v); // the ⊥ "uninitialized" pseudo-def
            b
        })
        .collect();
    for (d, &v) in def_var.iter().enumerate() {
        var_defs[v as usize].set(nvars + d);
    }
    let mut var_reads: Vec<Bits> = vec![Bits::new(read_leaf.len()); nvars];
    for (r, &v) in read_var.iter().enumerate() {
        var_reads[v as usize].set(r);
    }

    Func {
        cfg,
        occs,
        names,
        read_count,
        captured,
        binding_exempt,
        first_occurrence,
        def_leaf,
        def_node,
        def_kind,
        read_leaf,
        var_defs,
        var_reads,
        nvars,
    }
}

impl Func<'_> {
    fn nn(&self) -> usize {
        self.cfg.nodes.len()
    }

    /// Forward may-analysis: which definitions (⊥ or real) may reach
    /// each node entry. Strong updates: a write kills every other def
    /// of its variable. A bare declaration (`DefKind::Decl`) stores no
    /// value: it neither kills ⊥ nor enters the def sets, so `int x;`
    /// leaves the variable uninitialized.
    fn reaching_defs(&self) -> Vec<Bits> {
        let nd = self.nvars + self.def_leaf.len();
        let mut bottoms = Bits::new(nd);
        for v in 0..self.nvars {
            bottoms.set(v);
        }
        let mut out: Vec<Bits> = vec![Bits::new(nd); self.nn()];
        loop {
            let mut changed = false;
            for n in 0..self.nn() {
                let mut cur = self.in_defs(n, &out, &bottoms);
                for occ in &self.occs[n] {
                    if let Occ::Write {
                        var, def_id, kind, ..
                    } = occ
                    {
                        if *kind != DefKind::Decl {
                            cur.subtract(&self.var_defs[*var as usize]);
                            cur.set(self.nvars + *def_id as usize);
                        }
                    }
                }
                if cur != out[n] {
                    out[n] = cur;
                    changed = true;
                }
            }
            if !changed {
                return out;
            }
        }
    }

    fn in_defs(&self, n: usize, out: &[Bits], bottoms: &Bits) -> Bits {
        let mut cur = if n == ENTRY {
            bottoms.clone()
        } else {
            Bits::new(bottoms.words.len() * 64)
        };
        for &p in &self.cfg.nodes[n].preds {
            cur.union(&out[p]);
        }
        cur
    }

    /// Forward may-analysis: which *reads* may be the most recent read
    /// of each variable. A read supersedes earlier reads of the same
    /// variable; writes do not kill (last-use looks through them).
    fn reaching_reads(&self) -> Vec<Bits> {
        let nr = self.read_leaf.len();
        let mut out: Vec<Bits> = vec![Bits::new(nr); self.nn()];
        loop {
            let mut changed = false;
            for n in 0..self.nn() {
                let mut cur = Bits::new(nr);
                for &p in &self.cfg.nodes[n].preds {
                    cur.union(&out[p]);
                }
                for occ in &self.occs[n] {
                    if let Occ::Read { var, read_id, .. } = occ {
                        cur.subtract(&self.var_reads[*var as usize]);
                        cur.set(*read_id as usize);
                    }
                }
                if cur != out[n] {
                    out[n] = cur;
                    changed = true;
                }
            }
            if !changed {
                return out;
            }
        }
    }

    /// Backward liveness at node exit, over variables.
    fn live_out(&self) -> Vec<Bits> {
        let mut live_in: Vec<Bits> = vec![Bits::new(self.nvars); self.nn()];
        let mut live_out: Vec<Bits> = vec![Bits::new(self.nvars); self.nn()];
        loop {
            let mut changed = false;
            for n in (0..self.nn()).rev() {
                let mut out = Bits::new(self.nvars);
                for &s in &self.cfg.nodes[n].succs {
                    out.union(&live_in[s]);
                }
                let mut cur = out.clone();
                for occ in self.occs[n].iter().rev() {
                    match occ {
                        Occ::Write { var, .. } => cur.clear(*var as usize),
                        Occ::Read { var, .. } => cur.set(*var as usize),
                    }
                }
                live_out[n] = out;
                if cur != live_in[n] {
                    live_in[n] = cur;
                    changed = true;
                }
            }
            if !changed {
                return live_out;
            }
        }
    }

    /// Nodes reachable strictly *after* `n` (via its successors; `n`
    /// itself only through a cycle).
    fn reachable_after(&self, n: usize) -> Vec<bool> {
        let mut seen = vec![false; self.nn()];
        let mut work: Vec<usize> = self.cfg.nodes[n].succs.clone();
        for &s in &work {
            seen[s] = true;
        }
        while let Some(m) = work.pop() {
            for &s in &self.cfg.nodes[m].succs {
                if !seen[s] {
                    seen[s] = true;
                    work.push(s);
                }
            }
        }
        seen
    }
}

/// One raw finding, before rendering into a [`Diagnostic`].
struct Hit {
    leaf: NodeId,
    code: &'static str,
    message: String,
}

/// Runs the engine over every function of one tree, producing lint hits
/// and typed flow edges in one pass.
fn analyze(language: Language, ast: &Ast) -> (Vec<Hit>, Vec<FlowEdge>) {
    let t0 = Instant::now();
    let tree = ScopeTree::build(language, ast);
    let resolution = resolve(language, ast);
    let cfgs = build_cfgs(language, ast, &tree);
    telemetry::observe(
        DATAFLOW_MICROS,
        &[("phase", "cfg")],
        t0.elapsed().as_micros() as u64,
    );

    // The resolver buckets by *exact* scope: an occurrence inside a
    // nested function whose binding lives in an enclosing scope lands
    // in the file-wide residual group. Re-attach each such occurrence
    // to its nearest declaring ancestor scope so the binding counts as
    // captured (and closure reads count as reads).
    let mut declared_in: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for g in &resolution.groups {
        if let Some(scope) = g.scope {
            declared_in.entry(g.name.as_str()).or_default().push(scope);
        }
    }
    let mut nested: BTreeMap<(&str, usize), Vec<NodeId>> = BTreeMap::new();
    for g in resolution.groups.iter().filter(|g| g.scope.is_none()) {
        let Some(scopes) = declared_in.get(g.name.as_str()) else {
            continue;
        };
        for &leaf in &g.occurrences {
            let mut cur = Some(tree.scope_of(leaf));
            while let Some(s) = cur {
                if scopes.contains(&s) {
                    nested.entry((g.name.as_str(), s)).or_default().push(leaf);
                    break;
                }
                cur = tree.scopes()[s].parent;
            }
        }
    }

    let t1 = Instant::now();
    let mut hits = Vec::new();
    let mut edges = Vec::new();
    for cfg in &cfgs {
        let groups: Vec<&ResolvedGroup> = resolution
            .groups
            .iter()
            .filter(|g| g.scope == Some(cfg.scope))
            .collect();
        if groups.is_empty() {
            continue;
        }
        let extras: Vec<Vec<NodeId>> = groups
            .iter()
            .map(|g| {
                nested
                    .get(&(g.name.as_str(), cfg.scope))
                    .cloned()
                    .unwrap_or_default()
            })
            .collect();
        let func = collect(language, ast, &tree, &groups, &extras, cfg);
        solve_function(&func, &mut hits, &mut edges);
    }
    edges.sort_unstable();
    edges.dedup();
    telemetry::observe(
        DATAFLOW_MICROS,
        &[("phase", "solve")],
        t1.elapsed().as_micros() as u64,
    );
    (hits, edges)
}

/// Solves one function's fixed points and walks every reachable node
/// once more, simulating the streams against the entry facts to report
/// per-occurrence findings and emit flow edges.
fn solve_function(func: &Func<'_>, hits: &mut Vec<Hit>, edges: &mut Vec<FlowEdge>) {
    let out_defs = func.reaching_defs();
    let out_reads = func.reaching_reads();
    let live_out = func.live_out();
    let reachable = func.cfg.reachable();
    let nd = func.nvars + func.def_leaf.len();
    let mut bottoms = Bits::new(nd);
    for v in 0..func.nvars {
        bottoms.set(v);
    }

    for (n, &is_reachable) in reachable.iter().enumerate().take(func.nn()) {
        if !is_reachable {
            continue;
        }
        let mut defs = func.in_defs(n, &out_defs, &bottoms);
        let mut reads = Bits::new(func.read_leaf.len());
        for &p in &func.cfg.nodes[n].preds {
            reads.union(&out_reads[p]);
        }
        for (pos, occ) in func.occs[n].iter().enumerate() {
            match *occ {
                Occ::Read { leaf, var, read_id } => {
                    let v = var as usize;
                    let mut any_real = false;
                    for d in defs.ones_in(&func.var_defs[v]) {
                        if d >= func.nvars {
                            any_real = true;
                            let target = func.def_leaf[d - func.nvars];
                            if target != leaf {
                                edges.push(FlowEdge {
                                    kind: FlowKind::LastWrite,
                                    from: leaf,
                                    to: target,
                                });
                            }
                        }
                    }
                    if !func.captured[v] && defs.get(v) && !any_real {
                        hits.push(Hit {
                            leaf,
                            code: "use-before-def",
                            message: format!(
                                "`{}` is read before any assignment reaches it",
                                func.names[v]
                            ),
                        });
                    }
                    for r in reads.ones_in(&func.var_reads[v]) {
                        let target = func.read_leaf[r];
                        if target != leaf {
                            edges.push(FlowEdge {
                                kind: FlowKind::LastUse,
                                from: leaf,
                                to: target,
                            });
                        }
                    }
                    reads.subtract(&func.var_reads[v]);
                    reads.set(read_id as usize);
                }
                Occ::Write {
                    leaf,
                    var,
                    def_id,
                    kind,
                } => {
                    let v = var as usize;
                    for d in defs.ones_in(&func.var_defs[v]) {
                        if d >= func.nvars {
                            let target = func.def_leaf[d - func.nvars];
                            if target != leaf {
                                edges.push(FlowEdge {
                                    kind: FlowKind::LastWrite,
                                    from: leaf,
                                    to: target,
                                });
                            }
                        }
                    }
                    if !func.captured[v] && kind.is_store() && func.read_count[v] > 0 {
                        check_dead_store(func, n, pos, leaf, var, def_id, &live_out, hits);
                    }
                    if kind != DefKind::Decl {
                        defs.subtract(&func.var_defs[v]);
                        defs.set(func.nvars + def_id as usize);
                    }
                }
            }
        }
    }

    // Group-level finding: declared but never read, in any scope.
    // Parameters and catch bindings are part of a signature the author
    // may not control; they are exempt, as linters conventionally do.
    for v in 0..func.nvars {
        if func.read_count[v] == 0 && !func.binding_exempt[v] {
            hits.push(Hit {
                leaf: func.first_occurrence[v],
                code: "unused-binding",
                message: format!("`{}` is never read", func.names[v]),
            });
        }
    }
}

/// Decides whether the write at `occs[n][pos]` can ever be read, and
/// reports `dead-store` (no later def on any path) or
/// `write-write-shadow` (a later def overwrites it) when it cannot.
#[allow(clippy::too_many_arguments)]
fn check_dead_store(
    func: &Func<'_>,
    n: usize,
    pos: usize,
    leaf: NodeId,
    var: u32,
    def_id: u32,
    live_out: &[Bits],
    hits: &mut Vec<Hit>,
) {
    let v = var as usize;
    // First, the rest of this node's stream settles it exactly.
    for occ in &func.occs[n][pos + 1..] {
        match *occ {
            Occ::Read { var: rv, .. } if rv == var => return,
            Occ::Write { var: wv, .. } if wv == var => {
                hits.push(Hit {
                    leaf,
                    code: "write-write-shadow",
                    message: format!(
                        "value assigned to `{}` is overwritten before being read",
                        func.names[v]
                    ),
                });
                return;
            }
            _ => {}
        }
    }
    if live_out[n].get(v) {
        return;
    }
    // Dead at node exit. If some other def of the variable sits on a
    // path out of here, the store is shadowed; otherwise it is simply
    // never read again.
    let after = func.reachable_after(n);
    let shadowed = func.def_node.iter().enumerate().any(|(d, &dn)| {
        d as u32 != def_id
            && func.def_kind[d] != DefKind::Decl
            && after[dn]
            && func.var_defs[v].get(func.nvars + d)
    });
    hits.push(Hit {
        leaf,
        code: if shadowed {
            "write-write-shadow"
        } else {
            "dead-store"
        },
        message: if shadowed {
            format!(
                "value assigned to `{}` is overwritten before being read",
                func.names[v]
            )
        } else {
            format!("value assigned to `{}` is never read", func.names[v])
        },
    });
}

/// Runs the four data-flow lints over one tree. Deterministic and
/// jobs-invariant; diagnostics are ordered by leaf preorder index, then
/// code.
pub fn lint(language: Language, unit: &str, ast: &Ast) -> Vec<Diagnostic> {
    let (mut hits, _) = analyze(language, ast);
    hits.sort_by(|a, b| (a.leaf.index(), a.code).cmp(&(b.leaf.index(), b.code)));
    hits.into_iter()
        .map(|h| {
            Diagnostic::new(h.code, Severity::Warning, unit.to_string(), h.message)
                .with_language(language)
                .with_node(h.leaf.index() as u32)
        })
        .collect()
}

/// Computes the typed data-flow edges of one tree: for every variable
/// occurrence, `LastWrite` edges to each definition that may reach it
/// and `LastUse` edges to each read that may precede it. Sorted by
/// (kind, from, to) and deduplicated; self-edges are dropped.
pub fn flow_edges(language: Language, ast: &Ast) -> Vec<FlowEdge> {
    analyze(language, ast).1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_js(source: &str) -> Vec<Diagnostic> {
        let ast = Language::JavaScript.parse(source).unwrap();
        lint(Language::JavaScript, "test.js", &ast)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_function_produces_no_findings() {
        let diags = lint_js("function f(a) { var b = a + 1; return b; }");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn use_before_def_fires_on_a_straight_line() {
        let diags = lint_js("function f() { g(x); var x = 1; return x; }");
        assert_eq!(codes(&diags), ["use-before-def"]);
    }

    #[test]
    fn a_maybe_initialized_read_is_not_flagged() {
        // On the `else` path x is still ⊥, but on the `then` path it is
        // defined — "may reach" means no finding.
        let diags = lint_js("function f(c) { var x; if (c) { x = 1; } return x; }");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dead_store_fires_when_the_value_cannot_be_read() {
        let diags = lint_js("function f(a) { var b = a; b = 2; return b; }");
        // The initializing store of `b` is immediately overwritten.
        assert_eq!(codes(&diags), ["write-write-shadow"]);
        let diags = lint_js("function f(a) { var b = 1; return a; }");
        assert_eq!(codes(&diags), ["unused-binding"]);
    }

    #[test]
    fn final_dead_store_without_shadow_is_a_dead_store() {
        let diags = lint_js("function f(a) { var b = a; g(b); b = 2; return a; }");
        assert_eq!(codes(&diags), ["dead-store"]);
    }

    #[test]
    fn loop_carried_values_stay_alive() {
        let diags = lint_js(
            "function f(n) { var t = 0; for (var i = 0; i < n; i++) { t += i; } return t; }",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unused_binding_ignores_parameters() {
        let diags = lint_js("function f(unused) { return 1; }");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn captured_variables_are_exempt_from_flow_lints() {
        let diags =
            lint_js("function f() { var x = 1; var g = function () { return x; }; return g; }");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn every_language_flags_a_seeded_use_before_def() {
        for (language, source) in [
            (
                Language::Java,
                "class C { int f() { int x; int y = x + 1; x = 2; return y + x; } }",
            ),
            (
                Language::Python,
                "def f():\n    y = x + 1\n    x = 2\n    return y + x\n",
            ),
            (
                Language::CSharp,
                "class C { int F() { int x; int y = x + 1; x = 2; return y + x; } }",
            ),
        ] {
            let ast = language.parse(source).unwrap();
            let diags = lint(language, "unit", &ast);
            assert_eq!(codes(&diags), ["use-before-def"], "{language:?}: {diags:?}");
        }
    }

    #[test]
    fn flow_edges_link_a_read_to_its_write_and_prior_read() {
        let ast = Language::JavaScript
            .parse("function f(a) { var b = a; g(b); h(b); return b; }")
            .unwrap();
        let edges = flow_edges(Language::JavaScript, &ast);
        assert!(edges
            .iter()
            .any(|e| e.kind == FlowKind::LastWrite && e.from != e.to));
        assert!(edges
            .iter()
            .any(|e| e.kind == FlowKind::LastUse && e.from != e.to));
        // Sorted and deduplicated.
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(edges, sorted);
    }

    #[test]
    fn lints_and_edges_are_deterministic_on_generated_corpora() {
        for language in Language::ALL {
            let corpus = pigeon_corpus::generate(
                language,
                &pigeon_corpus::CorpusConfig::default().with_files(6),
            );
            for doc in &corpus.docs {
                let ast = language.parse(&doc.source).unwrap();
                let a = lint(language, "u", &ast);
                let b = lint(language, "u", &ast);
                assert_eq!(
                    a.iter().map(|d| d.render_text()).collect::<Vec<_>>(),
                    b.iter().map(|d| d.render_text()).collect::<Vec<_>>(),
                );
                assert_eq!(flow_edges(language, &ast), flow_edges(language, &ast));
            }
        }
    }

    #[test]
    fn generated_corpora_are_lint_clean() {
        for language in Language::ALL {
            let corpus = pigeon_corpus::generate(
                language,
                &pigeon_corpus::CorpusConfig::default().with_files(12),
            );
            for (i, doc) in corpus.docs.iter().enumerate() {
                let ast = language.parse(&doc.source).unwrap();
                let diags = lint(language, "u", &ast);
                assert!(
                    diags.is_empty(),
                    "{language:?} doc{i}: {:?}\n{}",
                    diags.iter().map(|d| d.render_text()).collect::<Vec<_>>(),
                    doc.source
                );
            }
        }
    }
}
