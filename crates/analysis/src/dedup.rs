//! Corpus and split integrity: exact duplicates by normalized
//! fingerprint, near-duplicates by MinHash over path bags, and the
//! train/test leakage check.
//!
//! Exact duplication uses `pigeon_core::normalized_fingerprint`, which
//! is blind to alpha-renaming — precisely the transformation that lets a
//! "different" file leak memorized answers across an evaluation split.
//! Near-duplication sketches each file's bag of path-contexts (ends
//! alpha-normalized the same way) with a bottom-k MinHash and estimates
//! Jaccard similarity from sketch overlap, so two files that share most
//! of their paths are flagged even when they are not byte- or
//! fingerprint-identical.

use crate::diag::{Diagnostic, DuplicationSummary, Severity};
use pigeon_ast::Ast;
use pigeon_core::{leaf_pair_contexts, ExtractionConfig, Fnv64};
use std::collections::HashMap;

/// Sketch size: the `k` of bottom-k MinHash. 64 minima bound the
/// standard error of the Jaccard estimate near 1/√64 ≈ 12%, plenty to
/// separate near-duplicates (≳ 0.9) from ordinary same-generator files.
pub const SKETCH_K: usize = 64;

/// Default similarity at which a pair of files counts as near-duplicate.
pub const NEAR_DUP_THRESHOLD: f64 = 0.9;

/// A bottom-k MinHash sketch: the `k` smallest distinct 64-bit hashes
/// of the file's normalized path bag, sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sketch {
    mins: Vec<u64>,
}

impl Sketch {
    /// Sketches `ast`'s path bag. Path ends are replaced by the dense
    /// first-occurrence ordinal of their text (the same alpha-renaming
    /// normalization the exact fingerprint uses), so renamed copies
    /// sketch identically.
    pub fn of(ast: &Ast) -> Sketch {
        let cfg = ExtractionConfig::default();
        let mut first_seen: HashMap<String, u64> = HashMap::new();
        let mut ordinal = |text: &str| -> u64 {
            let next = first_seen.len() as u64;
            match first_seen.get(text) {
                Some(&v) => v,
                None => {
                    first_seen.insert(text.to_string(), next);
                    next
                }
            }
        };
        let mut hashes: Vec<u64> = Vec::new();
        for context in leaf_pair_contexts(ast, &cfg) {
            let mut h = Fnv64::new();
            h.write_u64(ordinal(context.start.as_str()));
            h.write(context.path.to_string().as_bytes());
            h.write_u64(ordinal(context.end.as_str()));
            hashes.push(h.finish());
        }
        hashes.sort_unstable();
        hashes.dedup();
        hashes.truncate(SKETCH_K);
        Sketch { mins: hashes }
    }

    /// Bottom-k Jaccard estimate between two sketches: take the `k`
    /// smallest hashes of the union and count how many are in both.
    pub fn similarity(&self, other: &Sketch) -> f64 {
        if self.mins.is_empty() && other.mins.is_empty() {
            return 1.0;
        }
        let mut union: Vec<u64> = self.mins.iter().chain(other.mins.iter()).copied().collect();
        union.sort_unstable();
        union.dedup();
        union.truncate(SKETCH_K);
        let shared = union
            .iter()
            .filter(|h| self.mins.binary_search(h).is_ok() && other.mins.binary_search(h).is_ok())
            .count();
        shared as f64 / union.len() as f64
    }
}

/// One audited file's identity for integrity checks.
#[derive(Debug, Clone)]
pub struct UnitPrint {
    pub name: String,
    pub fingerprint: u64,
    pub sketch: Sketch,
}

/// Measures duplication across `units` and emits the corpus-level
/// diagnostics. Duplication inside one corpus is an observation
/// (`Info`), not a defect — synthetic and real corpora alike contain
/// repeated idioms — but the measured rate feeds the report summary and
/// the docs.
pub fn corpus_diagnostics(
    units: &[UnitPrint],
    threshold: f64,
) -> (DuplicationSummary, Vec<Diagnostic>) {
    let mut diags = Vec::new();

    // Exact-duplicate groups, in first-occurrence order.
    let mut group_of: HashMap<u64, usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, unit) in units.iter().enumerate() {
        let next = groups.len();
        let g = *group_of.entry(unit.fingerprint).or_insert(next);
        if g == groups.len() {
            groups.push(Vec::new());
        }
        groups[g].push(i);
    }
    let duplicate_files: usize = groups.iter().map(|g| g.len() - 1).sum();
    for group in groups.iter().filter(|g| g.len() > 1) {
        let shown: Vec<&str> = group
            .iter()
            .take(5)
            .map(|&i| units[i].name.as_str())
            .collect();
        let more = group.len().saturating_sub(5);
        let suffix = if more > 0 {
            format!(" (+{more} more)")
        } else {
            String::new()
        };
        diags.push(Diagnostic::new(
            "corpus-duplicate",
            Severity::Info,
            units[group[0]].name.clone(),
            format!(
                "{} files share normalized fingerprint {:016x}: {}{}",
                group.len(),
                units[group[0]].fingerprint,
                shown.join(", "),
                suffix
            ),
        ));
    }

    // Near-duplicates among files that are not exact duplicates.
    let mut near_duplicate_pairs = 0usize;
    for i in 0..units.len() {
        for j in (i + 1)..units.len() {
            if units[i].fingerprint == units[j].fingerprint {
                continue;
            }
            let sim = units[i].sketch.similarity(&units[j].sketch);
            if sim >= threshold {
                near_duplicate_pairs += 1;
                diags.push(Diagnostic::new(
                    "corpus-near-duplicate",
                    Severity::Info,
                    units[i].name.clone(),
                    format!(
                        "estimated path-bag similarity {:.2} with {}",
                        sim, units[j].name
                    ),
                ));
            }
        }
    }

    let files = units.len();
    let summary = DuplicationSummary {
        files,
        distinct_fingerprints: groups.len(),
        duplicate_files,
        duplication_rate: if files == 0 {
            0.0
        } else {
            duplicate_files as f64 / files as f64
        },
        near_duplicate_pairs,
    };
    (summary, diags)
}

/// Refuses a train/test (or train/valid) split that shares an exact
/// normalized fingerprint across the boundary: that is memorization
/// leakage, and any accuracy measured over it is inflated.
pub fn check_split(
    train_label: &str,
    train: &[(String, u64)],
    test_label: &str,
    test: &[(String, u64)],
) -> Vec<Diagnostic> {
    let mut train_by_fp: HashMap<u64, &str> = HashMap::new();
    for (name, fp) in train {
        train_by_fp.entry(*fp).or_insert(name.as_str());
    }
    let mut diags = Vec::new();
    for (name, fp) in test {
        if let Some(train_name) = train_by_fp.get(fp) {
            diags.push(Diagnostic::new(
                "split-leak",
                Severity::Error,
                name.clone(),
                format!(
                    "{test_label} document shares normalized fingerprint {fp:016x} with \
                     {train_label} document {train_name}"
                ),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use pigeon_core::normalized_fingerprint;
    use pigeon_corpus::Language;

    fn print_of(language: Language, name: &str, source: &str) -> UnitPrint {
        let ast = language.parse(source).unwrap();
        UnitPrint {
            name: name.to_string(),
            fingerprint: normalized_fingerprint(&ast),
            sketch: Sketch::of(&ast),
        }
    }

    #[test]
    fn renamed_copy_is_an_exact_duplicate() {
        let a = print_of(
            Language::JavaScript,
            "a.js",
            "function f(x) { return x + 1; }",
        );
        let b = print_of(
            Language::JavaScript,
            "b.js",
            "function g(y) { return y + 1; }",
        );
        assert_eq!(a.fingerprint, b.fingerprint);
        let (summary, diags) = corpus_diagnostics(&[a, b], NEAR_DUP_THRESHOLD);
        assert_eq!(summary.duplicate_files, 1);
        assert_eq!(summary.distinct_fingerprints, 1);
        assert!(diags.iter().any(|d| d.code == "corpus-duplicate"));
    }

    #[test]
    fn near_duplicate_is_flagged_below_exact_identity() {
        // Same large body, one slightly different trailing statement:
        // not an exact fingerprint match, but almost every path is
        // shared.
        let mut body = String::new();
        for i in 0..4 {
            body.push_str(&format!(
                "var a{i} = {i}; var b{i} = a{i} + 2; if (b{i} > a{i}) {{ b{i} = b{i} - a{i}; }} "
            ));
        }
        let left = format!("function f() {{ {body} return 1; }}");
        let right = format!("function f() {{ {body} return 1 + 1; }}");
        let a = print_of(Language::JavaScript, "a.js", &left);
        let b = print_of(Language::JavaScript, "b.js", &right);
        assert_ne!(a.fingerprint, b.fingerprint);
        assert!(a.sketch.similarity(&b.sketch) >= NEAR_DUP_THRESHOLD);
        let (summary, diags) = corpus_diagnostics(&[a, b], NEAR_DUP_THRESHOLD);
        assert_eq!(summary.near_duplicate_pairs, 1);
        assert!(diags.iter().any(|d| d.code == "corpus-near-duplicate"));
    }

    #[test]
    fn unrelated_files_are_not_near_duplicates() {
        let a = print_of(
            Language::JavaScript,
            "a.js",
            "function f(x) { return x + 1; }",
        );
        let b = print_of(
            Language::JavaScript,
            "b.js",
            "function g() { var t = {}; for (var i = 0; i < 3; i++) { t[i] = i * i; } return t; }",
        );
        assert!(a.sketch.similarity(&b.sketch) < NEAR_DUP_THRESHOLD);
    }

    #[test]
    fn split_leak_is_an_error() {
        let train = vec![("t0".to_string(), 42u64), ("t1".to_string(), 7u64)];
        let test = vec![("e0".to_string(), 99u64), ("e1".to_string(), 7u64)];
        let diags = check_split("train", &train, "test", &test);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "split-leak");
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("t1"));
    }

    #[test]
    fn clean_split_passes() {
        let train = vec![("t0".to_string(), 1u64)];
        let test = vec![("e0".to_string(), 2u64)];
        assert!(check_split("train", &train, "test", &test).is_empty());
    }
}
