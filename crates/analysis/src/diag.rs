//! The diagnostic vocabulary shared by every audit pass.
//!
//! All four analyses — well-formedness, scope cross-check, corpus
//! integrity, model lint — speak in [`Diagnostic`] values collected into
//! a [`Report`]. The report owns rendering (human text and a versioned
//! JSON schema) and the `--deny` gating arithmetic, so passes never
//! print or exit themselves.

use pigeon_corpus::Language;
use serde_json::{json, Value};

/// How bad a finding is. The ordering (`Info < Warning < Error`) is the
/// `--deny` contract: denying a level denies everything at or above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Observations worth surfacing (duplication rates, shadowing) that
    /// are expected even on healthy corpora.
    Info,
    /// Suspicious but survivable: dead weight tables, empty candidate
    /// lists, childless nonterminals outside the grammar's allowlist.
    Warning,
    /// Invariant violations: corrupt trees, resolver/extractor
    /// disagreement, split leakage, non-finite weights.
    Error,
}

impl Severity {
    /// The lowercase name used by `--deny` and the JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses a `--deny` argument.
    pub fn from_name(name: &str) -> Option<Severity> {
        match name {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One audit finding, anchored to the unit (file, corpus, or model) it
/// was observed in and, when meaningful, a preorder node index.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable machine-readable code, e.g. `ast-parent-link`. Codes are
    /// documented in the README and never reused for a different check.
    pub code: &'static str,
    pub severity: Severity,
    /// The frontend the finding concerns, when it concerns one.
    pub language: Option<Language>,
    /// File path, corpus label, or model path the finding is about.
    pub unit: String,
    /// Preorder index of the offending node, for tree-level findings.
    pub node: Option<u32>,
    pub message: String,
}

impl Diagnostic {
    pub fn new(
        code: &'static str,
        severity: Severity,
        unit: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            language: None,
            unit: unit.into(),
            node: None,
            message: message.into(),
        }
    }

    pub fn with_language(mut self, language: Language) -> Self {
        self.language = Some(language);
        self
    }

    pub fn with_node(mut self, node: u32) -> Self {
        self.node = Some(node);
        self
    }

    /// `error[ast-parent-link] doc00003.js node 17: ...` — one line of
    /// the text renderer.
    pub fn render_text(&self) -> String {
        let mut line = format!("{}[{}] {}", self.severity, self.code, self.unit);
        if let Some(node) = self.node {
            line.push_str(&format!(" node {node}"));
        }
        line.push_str(": ");
        line.push_str(&self.message);
        line
    }

    fn to_value(&self) -> Value {
        json!({
            "code": self.code,
            "severity": self.severity.name(),
            "language": self.language.map(|l| l.name().to_string()),
            "unit": self.unit.as_str(),
            "node": self.node,
            "message": self.message.as_str(),
        })
    }
}

/// Every stable diagnostic code the audit surfaces can emit, with a
/// one-line description — the source of truth behind
/// `pigeon audit --list-codes`. Sorted by code; codes are append-only
/// and never reused for a different check.
pub fn code_catalog() -> Vec<(&'static str, &'static str)> {
    let mut codes = vec![
        ("parse-error", "source fails to parse under its frontend"),
        (
            "ast-arity",
            "node kind requires a fixed child count it does not have",
        ),
        (
            "ast-child-index",
            "stored child index disagrees with the node's position",
        ),
        ("ast-depth", "stored depth disagrees with the parent's"),
        (
            "ast-duplicate-child",
            "node appears in more than one child list",
        ),
        (
            "ast-empty-nonterminal",
            "interior node kind has no children",
        ),
        (
            "ast-ident-shape",
            "identifier value violates the frontend's token shape",
        ),
        (
            "ast-kind-class",
            "terminal/nonterminal kind used in the wrong class",
        ),
        ("ast-orphan", "node is unreachable from the root"),
        (
            "ast-parent-link",
            "stored parent disagrees with the actual parent",
        ),
        ("ast-root-is-child", "root appears in a child list"),
        ("ast-terminal-children", "terminal node carries children"),
        (
            "scope-cross-check",
            "independent scope resolver disagrees with the extractor's element grouping",
        ),
        (
            "scope-occurrence-duplicated",
            "one occurrence resolved into more than one element group",
        ),
        (
            "scope-occurrence-missing",
            "resolved occurrence missing from the extractor's grouping",
        ),
        ("scope-shadowing", "inner binding shadows an outer one"),
        (
            "corpus-duplicate",
            "file duplicates an earlier one under alpha-renaming",
        ),
        (
            "corpus-near-duplicate",
            "MinHash sketches estimate near-duplicate similarity",
        ),
        ("split-leak", "train/test splits share a program"),
        ("model-load", "model file failed to load"),
        (
            "model-dead-labels",
            "labels that no training factor can produce",
        ),
        ("model-dead-table", "weight table with no entries"),
        (
            "model-empty-candidates",
            "prediction candidate set is empty",
        ),
        ("model-nonfinite-weight", "weight is NaN or infinite"),
        ("model-table-shape", "weight table shape is inconsistent"),
        (
            "model-vocab-coverage",
            "weight ids outside the shipped vocabularies",
        ),
        ("partial-load", "partial statistics file failed to decode"),
        (
            "partial-stats",
            "stored count maps disagree with the partial's instances",
        ),
        ("partial-info", "partial statistics file summary"),
        ("checkpoint-load", "SGD checkpoint failed to decode"),
        ("checkpoint-info", "SGD checkpoint summary"),
    ];
    codes.extend(crate::dataflow::LINT_CODES);
    codes.sort_unstable_by_key(|&(code, _)| code);
    codes
}

/// Corpus-level duplication measurements, reported alongside the
/// diagnostics because the *rate* matters even when no finding fires.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DuplicationSummary {
    /// Units that parsed and were fingerprinted.
    pub files: usize,
    /// Distinct alpha-renaming-normalized fingerprints among them.
    pub distinct_fingerprints: usize,
    /// Files that share a fingerprint with an earlier file.
    pub duplicate_files: usize,
    /// `duplicate_files / files` (0.0 for an empty corpus).
    pub duplication_rate: f64,
    /// Pairs of non-identical files whose path-bag MinHash sketches
    /// estimate a Jaccard similarity at or above the near-dup threshold.
    pub near_duplicate_pairs: usize,
}

/// The outcome of an audit: every diagnostic plus the corpus-level
/// summary, with deterministic ordering guaranteed by construction
/// (units are processed via `parallel_map_indexed`, which preserves
/// input order for any `--jobs` value).
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    /// Units examined (source files plus any model files).
    pub units_audited: usize,
    /// Present when the audit fingerprinted a corpus.
    pub duplication: Option<DuplicationSummary>,
}

impl Report {
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// How many diagnostics are at or above `level` — nonzero means a
    /// `--deny level` run fails.
    pub fn denied_count(&self, level: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity >= level)
            .count()
    }

    /// The human-readable rendering: one line per diagnostic, then a
    /// summary block.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_text());
            out.push('\n');
        }
        out.push_str(&format!(
            "audited {} unit(s): {} error(s), {} warning(s), {} info(s)\n",
            self.units_audited,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        if let Some(dup) = &self.duplication {
            out.push_str(&format!(
                "duplication: {}/{} files duplicated ({:.1}%), {} distinct fingerprint(s), {} near-duplicate pair(s)\n",
                dup.duplicate_files,
                dup.files,
                dup.duplication_rate * 100.0,
                dup.distinct_fingerprints,
                dup.near_duplicate_pairs,
            ));
        }
        out
    }

    /// The machine-readable rendering, schema `pigeon-audit/1`. Object
    /// keys are emitted sorted (the serde shim's `Map` is a `BTreeMap`),
    /// so the output is byte-stable.
    pub fn render_json(&self) -> String {
        let duplication = match &self.duplication {
            Some(d) => json!({
                "files": d.files,
                "distinct_fingerprints": d.distinct_fingerprints,
                "duplicate_files": d.duplicate_files,
                "duplication_rate": d.duplication_rate,
                "near_duplicate_pairs": d.near_duplicate_pairs,
            }),
            None => Value::Null,
        };
        let value = json!({
            "schema": "pigeon-audit/1",
            "summary": json!({
                "units_audited": self.units_audited,
                "errors": self.count(Severity::Error),
                "warnings": self.count(Severity::Warning),
                "infos": self.count(Severity::Info),
                "duplication": duplication,
            }),
            "diagnostics": Value::Array(
                self.diagnostics.iter().map(|d| d.to_value()).collect()
            ),
        });
        serde_json::to_string(&value).expect("audit report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_catalog_is_sorted_unique_and_covers_the_dataflow_lints() {
        let catalog = code_catalog();
        let codes: Vec<&str> = catalog.iter().map(|&(c, _)| c).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "catalog must be sorted and duplicate-free");
        for (code, _) in crate::dataflow::LINT_CODES {
            assert!(codes.contains(&code), "missing dataflow lint {code}");
        }
        assert!(catalog.iter().all(|&(_, d)| !d.is_empty()));
    }

    #[test]
    fn severity_orders_for_deny() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::from_name("warning"), Some(Severity::Warning));
        assert_eq!(Severity::from_name("fatal"), None);
    }

    #[test]
    fn denied_count_includes_level_and_above() {
        let mut report = Report::default();
        report
            .diagnostics
            .push(Diagnostic::new("a", Severity::Info, "u", "m"));
        report
            .diagnostics
            .push(Diagnostic::new("b", Severity::Warning, "u", "m"));
        report
            .diagnostics
            .push(Diagnostic::new("c", Severity::Error, "u", "m"));
        assert_eq!(report.denied_count(Severity::Info), 3);
        assert_eq!(report.denied_count(Severity::Warning), 2);
        assert_eq!(report.denied_count(Severity::Error), 1);
    }

    #[test]
    fn text_rendering_includes_node_and_code() {
        let d = Diagnostic::new("ast-parent-link", Severity::Error, "a.js", "broken").with_node(7);
        assert_eq!(
            d.render_text(),
            "error[ast-parent-link] a.js node 7: broken"
        );
    }

    #[test]
    fn json_rendering_is_schema_tagged() {
        let mut report = Report {
            units_audited: 2,
            ..Report::default()
        };
        report
            .diagnostics
            .push(Diagnostic::new("x", Severity::Warning, "u", "m"));
        let json = report.render_json();
        assert!(json.contains("\"schema\":\"pigeon-audit/1\""));
        assert!(json.contains("\"warnings\":1"));
    }
}
