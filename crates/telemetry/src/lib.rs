//! Dependency-free observability for the PIGEON pipeline: RAII spans,
//! counters, fixed-bucket histograms, a Prometheus `/metrics` rendering,
//! and Chrome trace-event export.
//!
//! # Architecture
//!
//! All series live in a process-global [`Registry`] (see [`global`]).
//! Instrumentation sites use the free functions here — [`span`],
//! [`count`], [`counter`], [`histogram`] — which resolve through a
//! thread-local **sink**: normally the global registry, but inside a
//! worker pool each worker writes to a private shard that the pool
//! merges back **in worker order** ([`with_shard`], [`Registry::merge`]).
//! Counters and histogram buckets merge by integer addition, so every
//! jobs-invariant quantity (documents processed, paths extracted, ICM
//! sweeps…) produces byte-identical `/metrics` output for any `--jobs`
//! value — the same determinism contract as the rest of the repo.
//!
//! Timestamps come from an injectable [`Clock`]; tests freeze it
//! ([`ManualClock`]) so even duration histograms are deterministic.
//!
//! The whole layer can be switched off ([`set_enabled`], or the
//! `PIGEON_TELEMETRY=off` environment variable) — [`span`] then returns
//! an inert guard without reading the clock, which is what the overhead
//! numbers in `EXPERIMENTS.md` are measured against.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use pigeon_telemetry as telemetry;
//!
//! let registry = telemetry::Registry::new(Arc::new(telemetry::ManualClock::frozen(0)));
//! registry.counter("pigeon_docs_total", &[]).add(3);
//! let text = registry.render_prometheus();
//! assert!(text.contains("pigeon_docs_total 3"));
//! ```

mod clock;
mod metrics;
mod registry;
mod trace;

pub use clock::{Clock, ManualClock, WallClock};
pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{Registry, SeriesKey};
pub use trace::{render_trace, TraceEvent};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

/// The histogram family every [`Span`] observes into, labelled by
/// `phase="<span name>"`.
pub const PHASE_HISTOGRAM: &str = "pigeon_phase_micros";

/// Bucket bounds (µs) for pipeline-phase durations: 100µs … 60s.
pub const PHASE_BOUNDS: &[u64] = &[
    100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 60_000_000,
];

/// Bucket bounds (µs) for request latencies: 500µs … 1s.
pub const LATENCY_BOUNDS: &[u64] = &[
    500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
/// 0 = unread (consult the environment), 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);
static TRACING: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    /// Worker-local shard override; `None` routes to the global registry.
    static SINK: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
    /// Names of the spans currently open on this thread (parent tracking).
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Small dense id for trace events, assigned on first use per thread.
    static TID: RefCell<Option<u32>> = const { RefCell::new(None) };
}

/// The process-global registry (created on first use).
pub fn global() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| Arc::new(Registry::default()))
}

/// The registry instrumentation currently writes to: the enclosing
/// worker shard if inside [`with_shard`], otherwise the global registry.
pub fn current() -> Arc<Registry> {
    SINK.with(|sink| match &*sink.borrow() {
        Some(shard) => Arc::clone(shard),
        None => Arc::clone(global()),
    })
}

/// Whether telemetry records anything. Defaults to on; the environment
/// variable `PIGEON_TELEMETRY` set to `0`, `off` or `false` disables it
/// process-wide (the knob behind the overhead measurements).
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = !matches!(
                std::env::var("PIGEON_TELEMETRY").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            );
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Turns the whole layer on or off at runtime.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Whether completed spans are additionally collected as trace events
/// (off by default; `--trace-out` turns it on for a run).
pub fn tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Enables or disables trace-event collection.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Replaces the global registry's clock (tests inject [`ManualClock`]).
pub fn set_clock(clock: Arc<dyn Clock>) {
    global().set_clock(clock);
}

/// Zeroes every global series and clears the trace buffer.
pub fn reset() {
    global().reset();
}

/// Renders the global registry in Prometheus text format.
pub fn render_prometheus() -> String {
    global().render_prometheus()
}

/// Renders the global trace buffer as Chrome trace-event JSON.
pub fn trace_json() -> String {
    render_trace(&global().trace_events())
}

/// The end-of-run phase-time table (`--timings`).
pub fn phase_summary() -> String {
    global().phase_summary()
}

/// Registers help text for a metric family on the global registry.
pub fn describe(name: &'static str, help: &'static str) {
    global().describe(name, help);
}

/// A counter on the current sink (no labels).
pub fn counter(name: &'static str) -> Arc<Counter> {
    current().counter(name, &[])
}

/// A labelled counter on the current sink.
pub fn counter_with(name: &'static str, labels: &[(&str, &str)]) -> Arc<Counter> {
    current().counter(name, labels)
}

/// A gauge on the current sink (no labels).
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    current().gauge(name, &[])
}

/// A labelled gauge on the current sink.
pub fn gauge_with(name: &'static str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    current().gauge(name, labels)
}

/// A histogram on the current sink.
pub fn histogram(name: &'static str, labels: &[(&str, &str)], bounds: &[u64]) -> Arc<Histogram> {
    current().histogram(name, labels, bounds)
}

/// Adds `n` to `name` on the current sink — no-op when disabled.
pub fn count(name: &'static str, n: u64) {
    if enabled() {
        current().counter(name, &[]).add(n);
    }
}

/// Adds `n` to the labelled series `name{labels}` — no-op when disabled.
pub fn count_with(name: &'static str, labels: &[(&str, &str)], n: u64) {
    if enabled() {
        current().counter(name, labels).add(n);
    }
}

/// Observes `value` into the histogram `name{labels}` with the standard
/// phase bounds — no-op when disabled.
pub fn observe(name: &'static str, labels: &[(&str, &str)], value: u64) {
    if enabled() {
        current()
            .histogram(name, labels, PHASE_BOUNDS)
            .observe(value);
    }
}

/// Runs `f` with all instrumentation on this thread routed to `shard`
/// instead of the global registry. The caller merges the shard back
/// (in worker order) with [`Registry::merge`]. Restores the previous
/// sink on exit, panics included; nests.
pub fn with_shard<R>(shard: &Arc<Registry>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<Registry>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SINK.with(|sink| *sink.borrow_mut() = self.0.take());
        }
    }
    let previous = SINK.with(|sink| sink.borrow_mut().replace(Arc::clone(shard)));
    let _restore = Restore(previous);
    f()
}

fn thread_id() -> u32 {
    TID.with(|tid| {
        *tid.borrow_mut()
            .get_or_insert_with(|| NEXT_TID.fetch_add(1, Ordering::Relaxed))
    })
}

/// An open span: entering records the start time and pushes the name on
/// the thread's span stack; dropping observes the duration into
/// [`PHASE_HISTOGRAM`] and, when tracing, appends a trace event with the
/// parent captured at entry. When telemetry is disabled the guard is
/// inert — no clock read, no allocation.
#[must_use = "a span measures the time until it is dropped"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: &'static str,
    start: u64,
    parent: Option<&'static str>,
    sink: Arc<Registry>,
}

/// Opens a span named `name` on the current sink.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    let sink = current();
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(name);
        parent
    });
    Span {
        inner: Some(SpanInner {
            name,
            start: sink.now_micros(),
            parent,
            sink,
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let end = inner.sink.now_micros();
        let dur = end.saturating_sub(inner.start);
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        inner
            .sink
            .histogram(PHASE_HISTOGRAM, &[("phase", inner.name)], PHASE_BOUNDS)
            .observe(dur);
        if tracing() {
            inner.sink.record_trace(TraceEvent {
                name: inner.name,
                ts: inner.start,
                dur,
                tid: thread_id(),
                parent: inner.parent,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Global-state tests share the process registry; serialize them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn fresh_global() -> std::sync::MutexGuard<'static, ()> {
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        set_tracing(false);
        set_clock(Arc::new(ManualClock::frozen(0)));
        reset();
        guard
    }

    #[test]
    fn spans_observe_the_phase_histogram() {
        let _guard = fresh_global();
        set_clock(Arc::new(ManualClock::stepping(0, 10)));
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        let h = global().histogram(PHASE_HISTOGRAM, &[("phase", "outer")], PHASE_BOUNDS);
        assert_eq!(h.count(), 1);
        let h = global().histogram(PHASE_HISTOGRAM, &[("phase", "inner")], PHASE_BOUNDS);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn tracing_records_parent_links() {
        let _guard = fresh_global();
        set_clock(Arc::new(ManualClock::stepping(0, 1)));
        set_tracing(true);
        {
            let _outer = span("t_outer");
            let _inner = span("t_inner");
        }
        set_tracing(false);
        let events = global().trace_events();
        assert_eq!(events.len(), 2);
        let inner = events.iter().find(|e| e.name == "t_inner").unwrap();
        let outer = events.iter().find(|e| e.name == "t_outer").unwrap();
        assert_eq!(inner.parent, Some("t_outer"));
        assert_eq!(outer.parent, None);
        // Well-nested: the child interval lies inside the parent's.
        assert!(outer.ts <= inner.ts);
        assert!(inner.ts + inner.dur <= outer.ts + outer.dur);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = fresh_global();
        set_enabled(false);
        {
            let _s = span("ghost");
        }
        set_enabled(true);
        let h = global().histogram(PHASE_HISTOGRAM, &[("phase", "ghost")], PHASE_BOUNDS);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn shards_capture_and_merge_worker_metrics() {
        let _guard = fresh_global();
        let shard = Arc::new(global().shard());
        with_shard(&shard, || {
            count("pigeon_shard_test_total", 4);
        });
        // Nothing reached the global registry yet.
        assert_eq!(global().counter("pigeon_shard_test_total", &[]).get(), 0);
        global().merge(&shard);
        assert_eq!(global().counter("pigeon_shard_test_total", &[]).get(), 4);
    }

    #[test]
    fn phase_summary_lists_recorded_phases() {
        let _guard = fresh_global();
        set_clock(Arc::new(ManualClock::stepping(0, 500)));
        {
            let _s = span("summary_phase");
        }
        let table = phase_summary();
        assert!(table.contains("summary_phase"), "{table}");
        assert!(table.contains("phase"), "{table}");
    }
}
