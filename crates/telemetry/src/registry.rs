//! The metric registry: named counter/histogram series, Prometheus text
//! rendering, Chrome trace-event collection, and ordered shard merging.

use crate::clock::{Clock, WallClock};
use crate::metrics::{Counter, Gauge, Histogram};
use crate::trace::TraceEvent;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, RwLock};

/// Identity of one metric series: family name plus sorted label pairs.
///
/// `BTreeMap` keys ordered by `(name, labels)` give the registry its
/// byte-stable rendering order for free.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    pub name: &'static str,
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &'static str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesKey { name, labels }
    }
}

/// Escapes a label value for the Prometheus text format.
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

/// A process- or shard-scoped collection of metric series and trace
/// events.
///
/// One global instance (see [`crate::global`]) aggregates the whole
/// process; worker pools additionally create short-lived **shards**
/// ([`Registry::shard`]) that buffer a worker's events locally and are
/// [`Registry::merge`]d back in worker order — the same ordered-merge
/// discipline as the CRF statistics pass, so metric totals never depend
/// on thread interleaving.
pub struct Registry {
    clock: RwLock<Arc<dyn Clock>>,
    counters: RwLock<BTreeMap<SeriesKey, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<SeriesKey, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<SeriesKey, Arc<Histogram>>>,
    /// Family name → help text, shown as `# HELP` lines.
    help: RwLock<BTreeMap<&'static str, &'static str>>,
    trace: Mutex<Vec<TraceEvent>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.counters.read().unwrap().len())
            .field("histograms", &self.histograms.read().unwrap().len())
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new(Arc::new(WallClock::new()))
    }
}

impl Registry {
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Registry {
            clock: RwLock::new(clock),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            help: RwLock::new(BTreeMap::new()),
            trace: Mutex::new(Vec::new()),
        }
    }

    /// Replaces the time source (tests inject a [`crate::ManualClock`]).
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        *self.clock.write().unwrap() = clock;
    }

    /// A reading from the registry's clock.
    pub fn now_micros(&self) -> u64 {
        self.clock.read().unwrap().now_micros()
    }

    /// An empty registry sharing this one's clock — a worker-local shard
    /// destined for [`Registry::merge`].
    pub fn shard(&self) -> Registry {
        Registry::new(Arc::clone(&*self.clock.read().unwrap()))
    }

    /// Registers help text for a metric family (first writer wins).
    pub fn describe(&self, name: &'static str, help: &'static str) {
        self.help.write().unwrap().entry(name).or_insert(help);
    }

    /// The counter series `name{labels}`, registered on first use.
    pub fn counter(&self, name: &'static str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = SeriesKey::new(name, labels);
        if let Some(c) = self.counters.read().unwrap().get(&key) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .unwrap()
                .entry(key)
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge series `name{labels}`, registered on first use.
    pub fn gauge(&self, name: &'static str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = SeriesKey::new(name, labels);
        if let Some(g) = self.gauges.read().unwrap().get(&key) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .unwrap()
                .entry(key)
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram series `name{labels}` with the given bucket bounds,
    /// registered on first use.
    ///
    /// # Panics
    ///
    /// Panics when the series exists with different bounds.
    pub fn histogram(
        &self,
        name: &'static str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Arc<Histogram> {
        let key = SeriesKey::new(name, labels);
        if let Some(h) = self.histograms.read().unwrap().get(&key) {
            assert_eq!(
                h.bounds(),
                bounds,
                "histogram {name} re-registered with different bounds"
            );
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .unwrap()
                .entry(key)
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Appends one completed-span trace event.
    pub fn record_trace(&self, event: TraceEvent) {
        self.trace.lock().unwrap().push(event);
    }

    /// Drains a copy of the collected trace events.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.lock().unwrap().clone()
    }

    /// Folds `other` into `self`: counters and histogram buckets add,
    /// trace events append in `other`'s order. Called once per shard in
    /// worker order, this is the deterministic aggregation step.
    pub fn merge(&self, other: &Registry) {
        // NB: bind the read-lock probe to its own statement so the guard
        // drops before the write lock is taken (an `if let` scrutinee
        // guard would outlive the `else` branch and self-deadlock).
        for (key, theirs) in other.counters.read().unwrap().iter() {
            let existing = self.counters.read().unwrap().get(key).cloned();
            let mine = existing.unwrap_or_else(|| {
                Arc::clone(
                    self.counters
                        .write()
                        .unwrap()
                        .entry(key.clone())
                        .or_insert_with(|| Arc::new(Counter::new())),
                )
            });
            mine.merge_from(theirs);
        }
        for (key, theirs) in other.gauges.read().unwrap().iter() {
            let existing = self.gauges.read().unwrap().get(key).cloned();
            let mine = existing.unwrap_or_else(|| {
                Arc::clone(
                    self.gauges
                        .write()
                        .unwrap()
                        .entry(key.clone())
                        .or_insert_with(|| Arc::new(Gauge::new())),
                )
            });
            mine.merge_from(theirs);
        }
        for (key, theirs) in other.histograms.read().unwrap().iter() {
            let existing = self.histograms.read().unwrap().get(key).cloned();
            let mine = existing.unwrap_or_else(|| {
                Arc::clone(
                    self.histograms
                        .write()
                        .unwrap()
                        .entry(key.clone())
                        .or_insert_with(|| Arc::new(Histogram::new(theirs.bounds()))),
                )
            });
            mine.merge_from(theirs);
        }
        for (name, help) in other.help.read().unwrap().iter() {
            self.describe(name, help);
        }
        self.trace
            .lock()
            .unwrap()
            .extend(other.trace.lock().unwrap().iter().cloned());
    }

    /// Zeroes every series and clears the trace buffer, in place: handles
    /// held by instrumentation sites stay valid.
    pub fn reset(&self) {
        for c in self.counters.read().unwrap().values() {
            c.reset();
        }
        for g in self.gauges.read().unwrap().values() {
            g.reset();
        }
        for h in self.histograms.read().unwrap().values() {
            h.reset();
        }
        self.trace.lock().unwrap().clear();
    }

    /// Renders every series in the Prometheus text exposition format.
    ///
    /// Output is byte-stable: families and series render in `BTreeMap`
    /// order (name, then sorted labels), counters before gauges before
    /// histograms, and all values are integers.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let help = self.help.read().unwrap();
        let mut last_family = "";

        for (key, counter) in self.counters.read().unwrap().iter() {
            if key.name != last_family {
                last_family = key.name;
                if let Some(h) = help.get(key.name) {
                    let _ = writeln!(out, "# HELP {} {h}", key.name);
                }
                let _ = writeln!(out, "# TYPE {} counter", key.name);
            }
            out.push_str(key.name);
            render_labels(&mut out, &key.labels, None);
            let _ = writeln!(out, " {}", counter.get());
        }

        last_family = "";
        for (key, gauge) in self.gauges.read().unwrap().iter() {
            if key.name != last_family {
                last_family = key.name;
                if let Some(h) = help.get(key.name) {
                    let _ = writeln!(out, "# HELP {} {h}", key.name);
                }
                let _ = writeln!(out, "# TYPE {} gauge", key.name);
            }
            out.push_str(key.name);
            render_labels(&mut out, &key.labels, None);
            let _ = writeln!(out, " {}", gauge.get());
        }

        last_family = "";
        for (key, hist) in self.histograms.read().unwrap().iter() {
            if key.name != last_family {
                last_family = key.name;
                if let Some(h) = help.get(key.name) {
                    let _ = writeln!(out, "# HELP {} {h}", key.name);
                }
                let _ = writeln!(out, "# TYPE {} histogram", key.name);
            }
            let mut cumulative = 0u64;
            let counts = hist.bucket_counts();
            for (bound, n) in hist.bounds().iter().zip(&counts) {
                cumulative += n;
                let _ = write!(out, "{}_bucket", key.name);
                render_labels(&mut out, &key.labels, Some(("le", &bound.to_string())));
                let _ = writeln!(out, " {cumulative}");
            }
            cumulative += counts.last().copied().unwrap_or(0);
            let _ = write!(out, "{}_bucket", key.name);
            render_labels(&mut out, &key.labels, Some(("le", "+Inf")));
            let _ = writeln!(out, " {cumulative}");
            let _ = write!(out, "{}_sum", key.name);
            render_labels(&mut out, &key.labels, None);
            let _ = writeln!(out, " {}", hist.sum());
            let _ = write!(out, "{}_count", key.name);
            render_labels(&mut out, &key.labels, None);
            let _ = writeln!(out, " {}", hist.count());
        }
        out
    }

    /// An end-of-run phase-time table over the `pigeon_phase_micros`
    /// family: one row per phase, sorted by total time (descending, name
    /// as tie-break), rendered for stderr.
    pub fn phase_summary(&self) -> String {
        let mut rows: Vec<(String, u64, u64)> = Vec::new();
        for (key, hist) in self.histograms.read().unwrap().iter() {
            if key.name != crate::PHASE_HISTOGRAM {
                continue;
            }
            let phase = key
                .labels
                .iter()
                .find(|(k, _)| k == "phase")
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            if hist.count() > 0 {
                rows.push((phase, hist.count(), hist.sum()));
            }
        }
        if rows.is_empty() {
            return "no phase timings recorded\n".to_string();
        }
        rows.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>14} {:>14}",
            "phase", "count", "total ms", "mean µs"
        );
        for (phase, count, sum) in &rows {
            let _ = writeln!(
                out,
                "{phase:<24} {count:>10} {:>14.1} {:>14.1}",
                *sum as f64 / 1_000.0,
                *sum as f64 / *count as f64,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn series_register_once_and_share_handles() {
        let r = Registry::default();
        let a = r.counter("x_total", &[("k", "v")]);
        let b = r.counter("x_total", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let r = Registry::default();
        let a = r.counter("x_total", &[("a", "1"), ("b", "2")]);
        let b = r.counter("x_total", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn prometheus_rendering_is_byte_stable_and_sorted() {
        let r = Registry::default();
        r.describe("zz_total", "last family");
        r.counter("zz_total", &[]).add(7);
        r.counter(
            "aa_total",
            &[("endpoint", "/v1/predict"), ("status", "200")],
        )
        .add(3);
        r.counter("aa_total", &[("endpoint", "/v1/health"), ("status", "200")])
            .inc();
        r.histogram("lat_micros", &[], &[10, 100]).observe(5);
        r.histogram("lat_micros", &[], &[10, 100]).observe(50);
        let text = r.render_prometheus();
        let expected = "# TYPE aa_total counter\n\
             aa_total{endpoint=\"/v1/health\",status=\"200\"} 1\n\
             aa_total{endpoint=\"/v1/predict\",status=\"200\"} 3\n\
             # HELP zz_total last family\n\
             # TYPE zz_total counter\n\
             zz_total 7\n\
             # TYPE lat_micros histogram\n\
             lat_micros_bucket{le=\"10\"} 1\n\
             lat_micros_bucket{le=\"100\"} 2\n\
             lat_micros_bucket{le=\"+Inf\"} 2\n\
             lat_micros_sum 55\n\
             lat_micros_count 2\n";
        assert_eq!(text, expected);
        assert_eq!(r.render_prometheus(), text, "second render identical");
    }

    #[test]
    fn gauges_render_between_counters_and_histograms() {
        let r = Registry::default();
        r.counter("a_total", &[]).inc();
        r.describe("q_depth", "items waiting");
        r.gauge("q_depth", &[]).set(4);
        r.histogram("z_micros", &[], &[10]).observe(1);
        let text = r.render_prometheus();
        let expected = "# TYPE a_total counter\n\
             a_total 1\n\
             # HELP q_depth items waiting\n\
             # TYPE q_depth gauge\n\
             q_depth 4\n\
             # TYPE z_micros histogram\n\
             z_micros_bucket{le=\"10\"} 1\n\
             z_micros_bucket{le=\"+Inf\"} 1\n\
             z_micros_sum 1\n\
             z_micros_count 1\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn gauges_merge_and_reset() {
        let base = Registry::default();
        let shard = base.shard();
        shard.gauge("g", &[]).set(3);
        base.gauge("g", &[]).set(2);
        base.merge(&shard);
        assert_eq!(base.gauge("g", &[]).get(), 5);
        base.reset();
        assert_eq!(base.gauge("g", &[]).get(), 0);
    }

    #[test]
    fn merge_is_order_insensitive_for_totals() {
        let base = Registry::default();
        let s1 = base.shard();
        let s2 = base.shard();
        s1.counter("n_total", &[]).add(2);
        s2.counter("n_total", &[]).add(5);
        s1.histogram("h", &[], &[10]).observe(3);
        s2.histogram("h", &[], &[10]).observe(30);

        base.merge(&s1);
        base.merge(&s2);
        assert_eq!(base.counter("n_total", &[]).get(), 7);
        assert_eq!(base.histogram("h", &[], &[10]).bucket_counts(), [1, 1]);

        let swapped = Registry::default();
        swapped.merge(&s2);
        swapped.merge(&s1);
        assert_eq!(swapped.render_prometheus(), base.render_prometheus());
    }

    #[test]
    fn merge_carries_trace_events_in_shard_order() {
        let base = Registry::default();
        let shard = base.shard();
        shard.record_trace(TraceEvent {
            name: "a",
            ts: 1,
            dur: 2,
            tid: 3,
            parent: None,
        });
        base.merge(&shard);
        let events = base.trace_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "a");
    }

    #[test]
    fn reset_keeps_handles_valid() {
        let r = Registry::default();
        let c = r.counter("c_total", &[]);
        c.add(9);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(r.counter("c_total", &[]).get(), 1);
    }

    #[test]
    fn shard_shares_the_parent_clock() {
        let r = Registry::new(Arc::new(ManualClock::frozen(77)));
        let s = r.shard();
        assert_eq!(s.now_micros(), 77);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::default();
        r.counter("e_total", &[("path", "a\"b\\c\nd")]).inc();
        let text = r.render_prometheus();
        assert!(text.contains(r#"path="a\"b\\c\nd""#), "{text}");
    }
}
