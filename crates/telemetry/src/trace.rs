//! Chrome trace-event export: the span tree serialised as `ph:"X"`
//! (complete) events, loadable in `chrome://tracing` / Perfetto.
//!
//! The JSON is written by hand so the crate stays dependency-free; the
//! format is tiny (one object shape) and the only dynamic strings are
//! span names, which are `&'static str` identifiers chosen by the
//! instrumentation sites (no escaping hazards beyond the standard ones,
//! which [`escape_json`] handles anyway).

use std::fmt::Write as _;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (phase identifier).
    pub name: &'static str,
    /// Start time, microseconds.
    pub ts: u64,
    /// Duration, microseconds.
    pub dur: u64,
    /// Small dense thread id.
    pub tid: u32,
    /// Enclosing span's name at entry, if any.
    pub parent: Option<&'static str>,
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders events as a Chrome trace-event JSON document.
///
/// Events are sorted by `(tid, ts, reverse dur, name)` — a stable order
/// in which a parent span always precedes its children, making the
/// nesting obvious to both tools and tests.
pub fn render_trace(events: &[TraceEvent]) -> String {
    let mut events: Vec<&TraceEvent> = events.iter().collect();
    events.sort_by(|a, b| {
        (a.tid, a.ts, std::cmp::Reverse(a.dur), a.name).cmp(&(
            b.tid,
            b.ts,
            std::cmp::Reverse(b.dur),
            b.name,
        ))
    });
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"pigeon\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            escape_json(e.name),
            e.ts,
            e.dur,
            e.tid
        );
        if let Some(parent) = e.parent {
            let _ = write!(out, ",\"args\":{{\"parent\":\"{}\"}}", escape_json(parent));
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_sorted_nested_events() {
        let events = vec![
            TraceEvent {
                name: "child",
                ts: 5,
                dur: 2,
                tid: 1,
                parent: Some("root"),
            },
            TraceEvent {
                name: "root",
                ts: 0,
                dur: 10,
                tid: 1,
                parent: None,
            },
        ];
        let json = render_trace(&events);
        let root = json.find("\"name\":\"root\"").expect("root present");
        let child = json.find("\"name\":\"child\"").expect("child present");
        assert!(root < child, "parent sorts before child: {json}");
        assert!(json.contains("\"args\":{\"parent\":\"root\"}"), "{json}");
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape_json("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(
            render_trace(&[]),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }
}
