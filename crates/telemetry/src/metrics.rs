//! The metric primitives: monotonic counters, up/down gauges and
//! fixed-bucket histograms. All are lock-free (plain atomic adds);
//! counters and histograms merge by integer addition — the property
//! that makes shard aggregation across worker pools order-independent
//! and therefore byte-identical for any `--jobs` value.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Folds another counter's value into this one (shard merge).
    pub fn merge_from(&self, other: &Counter) {
        self.add(other.get());
    }

    /// Zeroes the counter in place, keeping every held handle valid.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// An instantaneous value that can go up and down — queue depths,
/// in-flight request counts, loaded-model counts.
///
/// Unlike [`Counter`], a gauge reports a *current* state, so shard
/// merging adds the shards' values (each shard holds a disjoint part of
/// the whole, e.g. its own in-flight count); a gauge that represents a
/// single global quantity should live on one registry only.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Folds another gauge's value into this one (shard merge).
    pub fn merge_from(&self, other: &Gauge) {
        self.add(other.get());
    }

    /// Zeroes the gauge in place, keeping every held handle valid.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A histogram over fixed, strictly increasing upper bounds.
///
/// Bucket `i` counts observations `v <= bounds[i]` (Prometheus `le`
/// semantics, applied non-cumulatively in storage); one extra overflow
/// bucket catches everything beyond the last bound. Values are unitless
/// `u64`s — by convention microseconds for duration families.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// # Panics
    ///
    /// Panics unless `bounds` is non-empty and strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let mut buckets = Vec::with_capacity(bounds.len() + 1);
        buckets.resize_with(bounds.len() + 1, AtomicU64::default);
        Histogram {
            bounds: bounds.to_vec(),
            buckets,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The configured upper bounds (exclusive of the implicit `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Folds another histogram into this one (shard merge).
    ///
    /// # Panics
    ///
    /// Panics when the bucket layouts differ.
    pub fn merge_from(&self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket layouts"
        );
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.count.fetch_add(other.count(), Ordering::Relaxed);
    }

    /// Zeroes all buckets in place, keeping every held handle valid.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_merges() {
        let a = Counter::new();
        let b = Counter::new();
        a.inc();
        a.add(4);
        b.add(10);
        a.merge_from(&b);
        assert_eq!(a.get(), 15);
        a.reset();
        assert_eq!(a.get(), 0);
    }

    #[test]
    fn gauge_moves_both_ways_and_merges() {
        let g = Gauge::new();
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
        let other = Gauge::new();
        other.set(10);
        g.merge_from(&other);
        assert_eq!(g.get(), 3);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_le() {
        let h = Histogram::new(&[10, 100, 1000]);
        // One observation per region, including both edges of each bound.
        for v in [0, 9, 10, 11, 100, 101, 1000, 1001, u64::MAX] {
            h.observe(v);
        }
        // le=10: {0, 9, 10}; le=100: {11, 100}; le=1000: {101, 1000};
        // +Inf: {1001, MAX}.
        assert_eq!(h.bucket_counts(), [3, 2, 2, 2]);
        assert_eq!(h.count(), 9);
    }

    #[test]
    fn histogram_sum_and_count_track_observations() {
        let h = Histogram::new(&[5]);
        h.observe(3);
        h.observe(7);
        assert_eq!(h.sum(), 10);
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_counts(), [1, 1]);
    }

    #[test]
    fn histogram_merge_adds_bucketwise() {
        let a = Histogram::new(&[10, 20]);
        let b = Histogram::new(&[10, 20]);
        a.observe(5);
        b.observe(15);
        b.observe(25);
        a.merge_from(&b);
        assert_eq!(a.bucket_counts(), [1, 1, 1]);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 45);
    }

    #[test]
    #[should_panic(expected = "different bucket layouts")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let a = Histogram::new(&[10]);
        let b = Histogram::new(&[20]);
        a.merge_from(&b);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[10, 10]);
    }
}
