//! Injectable time sources.
//!
//! Every timestamp the telemetry layer records flows through a [`Clock`],
//! so tests can substitute a deterministic source and assert byte-exact
//! metric output, while production uses a monotonic wall clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond clock.
pub trait Clock: Send + Sync {
    /// Microseconds since an arbitrary fixed epoch (monotonic).
    fn now_micros(&self) -> u64;
}

/// The production clock: microseconds since the clock's creation.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A deterministic clock for tests: every reading advances the time by a
/// fixed `step` (possibly zero, freezing time entirely). With `step == 0`
/// all spans have zero duration, so histogram output depends only on
/// *event counts* — which is exactly the jobs-invariant the byte-identity
/// tests pin.
#[derive(Debug)]
pub struct ManualClock {
    now: AtomicU64,
    step: u64,
}

impl ManualClock {
    /// A clock frozen at `start`.
    pub fn frozen(start: u64) -> Self {
        ManualClock {
            now: AtomicU64::new(start),
            step: 0,
        }
    }

    /// A clock that returns `start`, `start + step`, `start + 2*step`, …
    /// on successive readings.
    pub fn stepping(start: u64, step: u64) -> Self {
        ManualClock {
            now: AtomicU64::new(start),
            step,
        }
    }

    /// Advances the clock by `micros` without producing a reading.
    pub fn advance(&self, micros: u64) {
        self.now.fetch_add(micros, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.now.fetch_add(self.step, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_steps_deterministically() {
        let c = ManualClock::stepping(100, 10);
        assert_eq!(c.now_micros(), 100);
        assert_eq!(c.now_micros(), 110);
        c.advance(1000);
        assert_eq!(c.now_micros(), 1120);
    }

    #[test]
    fn frozen_clock_never_moves() {
        let c = ManualClock::frozen(42);
        assert_eq!(c.now_micros(), 42);
        assert_eq!(c.now_micros(), 42);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }
}
