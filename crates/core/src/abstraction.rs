//! Path abstraction functions `α` (Definition 4.4 and §5.6).
//!
//! An abstraction maps a concrete [`AstPath`] to a coarser representation,
//! trading expressiveness for fewer distinct paths (and hence fewer model
//! parameters and faster training — the accuracy/time trade-off of the
//! paper's Fig. 12). The seven levels evaluated by the paper are all
//! implemented here, from `α_id` down to "no-paths".

use crate::path::{AstPath, Direction};
use pigeon_ast::Kind;
use std::fmt;

/// The abstraction levels of §5.6, ordered from most to least expressive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Abstraction {
    /// `α_id`: the full path, node-by-node with arrows.
    Full,
    /// The full kind sequence, without the up/down symbols.
    NoArrows,
    /// An unordered bag of the kinds on the path.
    ForgetOrder,
    /// Only the first, top (turning-point) and last kinds.
    FirstTopLast,
    /// Only the first and last kinds.
    FirstLast,
    /// Only the top kind.
    Top,
    /// No path information at all: every relation looks the same
    /// ("bag of near identifiers").
    NoPath,
}

impl Abstraction {
    /// All levels, in the order of the paper's Fig. 12 x-axis sweep.
    pub const ALL: [Abstraction; 7] = [
        Abstraction::NoPath,
        Abstraction::FirstLast,
        Abstraction::Top,
        Abstraction::FirstTopLast,
        Abstraction::ForgetOrder,
        Abstraction::NoArrows,
        Abstraction::Full,
    ];

    /// The name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Abstraction::Full => "full",
            Abstraction::NoArrows => "no-arrows",
            Abstraction::ForgetOrder => "forget-order",
            Abstraction::FirstTopLast => "first-top-last",
            Abstraction::FirstLast => "first-last",
            Abstraction::Top => "top",
            Abstraction::NoPath => "no-path",
        }
    }

    /// Parses a level from its [`name`](Abstraction::name).
    pub fn from_name(name: &str) -> Option<Abstraction> {
        Abstraction::ALL.into_iter().find(|a| a.name() == name)
    }

    /// Applies `α` to a concrete path.
    pub fn apply(self, path: &AstPath) -> AbstractPath {
        let mut elems: Vec<PathElem> = Vec::new();
        match self {
            Abstraction::Full => {
                for (i, &k) in path.kinds().iter().enumerate() {
                    if i > 0 {
                        elems.push(PathElem::Dir(path.directions()[i - 1]));
                    }
                    elems.push(PathElem::Kind(k));
                }
            }
            Abstraction::NoArrows => {
                elems.extend(path.kinds().iter().map(|&k| PathElem::Kind(k)));
            }
            Abstraction::ForgetOrder => {
                let mut kinds: Vec<Kind> = path.kinds().to_vec();
                kinds.sort();
                elems.extend(kinds.into_iter().map(PathElem::Kind));
            }
            Abstraction::FirstTopLast => {
                elems.push(PathElem::Kind(path.start_kind()));
                elems.push(PathElem::Kind(path.top_kind()));
                elems.push(PathElem::Kind(path.end_kind()));
            }
            Abstraction::FirstLast => {
                elems.push(PathElem::Kind(path.start_kind()));
                elems.push(PathElem::Kind(path.end_kind()));
            }
            Abstraction::Top => {
                elems.push(PathElem::Kind(path.top_kind()));
            }
            Abstraction::NoPath => {}
        }
        AbstractPath { elems }
    }
}

impl fmt::Display for Abstraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One element of an abstracted path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathElem {
    /// A node kind retained by the abstraction.
    Kind(Kind),
    /// A movement arrow (only present under [`Abstraction::Full`]).
    Dir(Direction),
}

/// The image `α(p)` of a path under an abstraction function.
///
/// Abstract paths are the unit interned by
/// [`PathVocab`](crate::PathVocab) and the unit the learning models treat
/// as a feature component; two concrete paths that abstract equally are
/// indistinguishable downstream — which is the point.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AbstractPath {
    elems: Vec<PathElem>,
}

impl AbstractPath {
    /// The retained elements, in abstraction-specific order.
    pub fn elems(&self) -> &[PathElem] {
        &self.elems
    }

    /// Number of retained elements (0 for [`Abstraction::NoPath`]).
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether the abstraction retained nothing.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }
}

impl fmt::Display for AbstractPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.elems.is_empty() {
            return f.write_str("ε");
        }
        let mut first = true;
        for e in &self.elems {
            if !first {
                f.write_str(" ")?;
            }
            first = false;
            match e {
                PathElem::Kind(k) => write!(f, "{k}")?,
                PathElem::Dir(d) => write!(f, "{d}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Kind {
        Kind::new(s)
    }

    /// Example 4.5 of the paper: item → array in `var item = array[i];`.
    fn example_path() -> AstPath {
        AstPath::new(
            vec![k("SymbolVar"), k("VarDef"), k("Sub"), k("SymbolRef")],
            vec![Direction::Up, Direction::Down, Direction::Down],
        )
    }

    #[test]
    fn alpha_id_keeps_arrows() {
        let a = Abstraction::Full.apply(&example_path());
        assert_eq!(a.to_string(), "SymbolVar ↑ VarDef ↓ Sub ↓ SymbolRef");
    }

    #[test]
    fn forget_arrows_matches_example_4_5() {
        let a = Abstraction::NoArrows.apply(&example_path());
        assert_eq!(a.to_string(), "SymbolVar VarDef Sub SymbolRef");
    }

    #[test]
    fn forget_order_sorts_kinds() {
        let p1 = AstPath::new(vec![k("B"), k("A")], vec![Direction::Up]);
        let p2 = AstPath::new(vec![k("A"), k("B")], vec![Direction::Up]);
        assert_eq!(
            Abstraction::ForgetOrder.apply(&p1),
            Abstraction::ForgetOrder.apply(&p2)
        );
    }

    #[test]
    fn first_top_last_keeps_turning_point() {
        let a = Abstraction::FirstTopLast.apply(&example_path());
        assert_eq!(a.to_string(), "SymbolVar VarDef SymbolRef");
    }

    #[test]
    fn top_keeps_only_the_highest_node() {
        let a = Abstraction::Top.apply(&example_path());
        assert_eq!(a.to_string(), "VarDef");
    }

    #[test]
    fn names_round_trip() {
        for a in Abstraction::ALL {
            assert_eq!(Abstraction::from_name(a.name()), Some(a));
        }
        assert_eq!(Abstraction::from_name("nonsense"), None);
    }

    #[test]
    fn no_path_is_constant() {
        let a = Abstraction::NoPath.apply(&example_path());
        let b = Abstraction::NoPath.apply(&AstPath::new(vec![k("X")], vec![]));
        assert_eq!(a, b);
        assert!(a.is_empty());
        assert_eq!(a.to_string(), "ε");
    }

    /// Coarser abstractions can never distinguish paths a finer one maps
    /// together: α-levels form a refinement chain on this family.
    #[test]
    fn coarser_never_splits_what_finer_merges() {
        let paths = [
            example_path(),
            example_path().reversed(),
            AstPath::new(
                vec![k("SymbolVar"), k("VarDef"), k("SymbolRef")],
                vec![Direction::Up, Direction::Down],
            ),
        ];
        // For every pair of paths and every adjacent (finer, coarser) pair
        // of levels in the chain full → no-arrows → forget-order and
        // first-top-last → first-last → no-path:
        let chains: [&[Abstraction]; 2] = [
            &[
                Abstraction::Full,
                Abstraction::NoArrows,
                Abstraction::ForgetOrder,
            ],
            &[
                Abstraction::FirstTopLast,
                Abstraction::FirstLast,
                Abstraction::NoPath,
            ],
        ];
        for chain in chains {
            for w in chain.windows(2) {
                let (fine, coarse) = (w[0], w[1]);
                for p in &paths {
                    for q in &paths {
                        if fine.apply(p) == fine.apply(q) {
                            assert_eq!(
                                coarse.apply(p),
                                coarse.apply(q),
                                "{coarse} split paths merged by {fine}"
                            );
                        }
                    }
                }
            }
        }
    }
}
