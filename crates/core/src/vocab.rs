//! Vocabularies: dense interning of abstract paths and labels.
//!
//! Learning models index features by small integers. [`Interner`] maps any
//! hashable item to a dense `u32` id; [`PathVocab`] specialises it to
//! abstracted paths, applying the configured [`Abstraction`] on the way in
//! so that consumers only ever see abstract path ids.

use crate::abstraction::{AbstractPath, Abstraction};
use crate::path::AstPath;
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// A dense id assigned to an abstracted path by a [`PathVocab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(pub u32);

/// Generic append-only interner from items to dense `u32` ids.
///
/// ```
/// use pigeon_core::Interner;
/// let mut i: Interner<String> = Interner::new();
/// let a = i.intern("done".to_owned());
/// assert_eq!(i.intern("done".to_owned()), a);
/// assert_eq!(i.resolve(a), "done");
/// assert_eq!(i.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Interner<T> {
    map: HashMap<T, u32>,
    items: Vec<T>,
}

impl<T: Eq + Hash + Clone> Interner<T> {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            map: HashMap::new(),
            items: Vec::new(),
        }
    }

    /// Returns the id of `item`, allocating the next dense id if new.
    pub fn intern(&mut self, item: T) -> u32 {
        if let Some(&id) = self.map.get(&item) {
            return id;
        }
        let id = self.items.len() as u32;
        self.items.push(item.clone());
        self.map.insert(item, id);
        id
    }

    /// Returns the id of `item` if it was interned before.
    pub fn get(&self, item: &T) -> Option<u32> {
        self.map.get(item).copied()
    }

    /// Borrowed-key [`get`](Interner::get): looks up by any borrowed form
    /// of `T` (e.g. `&str` for `Interner<String>`), so read-only callers
    /// never allocate an owned key just to probe the map.
    pub fn get_by<Q>(&self, item: &Q) -> Option<u32>
    where
        T: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.get(item).copied()
    }

    /// The item with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &T {
        &self.items[id as usize]
    }

    /// Number of distinct items interned.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing was interned yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates `(id, item)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.items.iter().enumerate().map(|(i, t)| (i as u32, t))
    }
}

impl<T: Eq + Hash + Clone> Default for Interner<T> {
    fn default() -> Self {
        Interner::new()
    }
}

/// A vocabulary of abstract paths under a fixed [`Abstraction`].
///
/// This is where the bias–variance dial of §5.6 physically lives: the
/// number of distinct ids this vocabulary hands out *is* the number of
/// distinct path features the model will have.
///
/// ```
/// use pigeon_core::{Abstraction, AstPath, Direction, PathVocab};
/// use pigeon_ast::Kind;
///
/// let mut v = PathVocab::new(Abstraction::FirstLast);
/// let p1 = AstPath::new(
///     vec![Kind::new("A"), Kind::new("M"), Kind::new("B")],
///     vec![Direction::Up, Direction::Down],
/// );
/// let p2 = AstPath::new(
///     vec![Kind::new("A"), Kind::new("N"), Kind::new("B")],
///     vec![Direction::Up, Direction::Down],
/// );
/// // first-last cannot tell the two apart:
/// assert_eq!(v.intern(&p1), v.intern(&p2));
/// assert_eq!(v.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PathVocab {
    abstraction: Abstraction,
    inner: Interner<AbstractPath>,
}

impl PathVocab {
    /// An empty vocabulary that abstracts with `abstraction`.
    pub fn new(abstraction: Abstraction) -> Self {
        PathVocab {
            abstraction,
            inner: Interner::new(),
        }
    }

    /// The abstraction applied to every interned path.
    pub fn abstraction(&self) -> Abstraction {
        self.abstraction
    }

    /// Abstracts `path` and returns the id of its abstract image.
    pub fn intern(&mut self, path: &AstPath) -> PathId {
        PathId(self.inner.intern(self.abstraction.apply(path)))
    }

    /// The id of `path`'s abstraction if seen before (for test-time
    /// lookups, which must not grow the vocabulary).
    pub fn get(&self, path: &AstPath) -> Option<PathId> {
        self.inner.get(&self.abstraction.apply(path)).map(PathId)
    }

    /// The abstract path behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this vocabulary.
    pub fn resolve(&self, id: PathId) -> &AbstractPath {
        self.inner.resolve(id.0)
    }

    /// Number of distinct abstract paths.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl fmt::Display for PathVocab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PathVocab({} paths under {})",
            self.len(),
            self.abstraction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Direction;
    use pigeon_ast::Kind;

    fn path(kinds: &[&str]) -> AstPath {
        let ks: Vec<Kind> = kinds.iter().map(|s| Kind::new(s)).collect();
        let n = ks.len() - 1;
        AstPath::new(ks, vec![Direction::Up; n])
    }

    #[test]
    fn interner_assigns_dense_ids() {
        let mut i: Interner<u64> = Interner::new();
        assert_eq!(i.intern(10), 0);
        assert_eq!(i.intern(20), 1);
        assert_eq!(i.intern(10), 0);
        assert_eq!(i.len(), 2);
        assert_eq!(*i.resolve(1), 20);
        assert_eq!(i.get(&20), Some(1));
        assert_eq!(i.get(&30), None);
    }

    #[test]
    fn full_vocab_distinguishes_all() {
        let mut v = PathVocab::new(Abstraction::Full);
        let a = v.intern(&path(&["A", "B", "C"]));
        let b = v.intern(&path(&["A", "X", "C"]));
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn no_path_vocab_has_one_id() {
        let mut v = PathVocab::new(Abstraction::NoPath);
        let a = v.intern(&path(&["A", "B", "C"]));
        let b = v.intern(&path(&["D", "E"]));
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn get_does_not_grow() {
        let mut v = PathVocab::new(Abstraction::Full);
        v.intern(&path(&["A", "B"]));
        assert!(v.get(&path(&["A", "B"])).is_some());
        assert_eq!(v.get(&path(&["Z", "Q"])), None);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn coarser_abstraction_never_yields_more_ids() {
        let paths = [
            path(&["A", "B", "C"]),
            path(&["A", "X", "C"]),
            path(&["A", "B", "C", "D"]),
            path(&["Q", "B", "C"]),
        ];
        let mut prev = usize::MAX;
        for a in [
            Abstraction::Full,
            Abstraction::NoArrows,
            Abstraction::FirstTopLast,
            Abstraction::FirstLast,
            Abstraction::Top,
            Abstraction::NoPath,
        ] {
            let mut v = PathVocab::new(a);
            for p in &paths {
                v.intern(p);
            }
            assert!(
                v.len() <= prev.max(v.len()),
                "sanity: vocabulary sizes are comparable"
            );
            prev = v.len();
        }
        // The last (NoPath) has exactly one id.
        assert_eq!(prev, 1);
    }
}
