//! Path-contexts (Definition 4.3).
//!
//! A path-context is a triple `⟨x_s, p, x_f⟩`: the values at the two ends
//! of an AST path. The paper mostly uses paths between terminals, whose
//! ends are terminal values; for the full-type prediction task it also
//! uses paths from terminals to the *nonterminal* whose type is predicted,
//! and semi-paths from a terminal to one of its ancestors. [`PathEnd`]
//! covers both cases.

use crate::path::AstPath;
use pigeon_ast::{Kind, NodeId, Symbol};
use std::fmt;

/// One end of a path-context: either a terminal's value or a nonterminal's
/// kind (for semi-paths and leaf-to-nonterminal paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathEnd {
    /// The end is a terminal; carries `val(n)`.
    Value(Symbol),
    /// The end is a nonterminal; carries its grammar symbol.
    Node(Kind),
}

impl PathEnd {
    /// The terminal value, if this end is a terminal.
    pub fn value(self) -> Option<Symbol> {
        match self {
            PathEnd::Value(v) => Some(v),
            PathEnd::Node(_) => None,
        }
    }

    /// A display string: the value for terminals, the kind for
    /// nonterminals.
    pub fn as_str(self) -> &'static str {
        match self {
            PathEnd::Value(v) => v.as_str(),
            PathEnd::Node(k) => k.as_str(),
        }
    }
}

impl fmt::Display for PathEnd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A concrete path-context `⟨x_s, p, x_f⟩` extracted from one tree.
///
/// Besides the triple itself, the context remembers *which* nodes it
/// connects (`start_node`, `end_node`) so that downstream consumers can
/// group contexts by program element and distinguish occurrences.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathContext {
    /// The value or kind at the start of the path.
    pub start: PathEnd,
    /// The syntactic path connecting the two ends.
    pub path: AstPath,
    /// The value or kind at the end of the path.
    pub end: PathEnd,
    /// The tree node the path starts at.
    pub start_node: NodeId,
    /// The tree node the path ends at.
    pub end_node: NodeId,
}

impl PathContext {
    /// Renders the triple in the paper's notation:
    /// `⟨item, SymbolVar ↑ VarDef ↓ Sub ↓ SymbolRef, array⟩`.
    pub fn display_triple(&self) -> String {
        format!("⟨{}, {}, {}⟩", self.start, self.path, self.end)
    }

    /// The same context viewed from the other end (path reversed, ends
    /// swapped). Extraction emits each unordered pair once; consumers that
    /// need both orientations call this.
    pub fn flipped(&self) -> PathContext {
        PathContext {
            start: self.end,
            path: self.path.reversed(),
            end: self.start,
            start_node: self.end_node,
            end_node: self.start_node,
        }
    }
}

/// The type of a data-flow edge between two variable occurrences.
///
/// These mirror the `LastUse` / `LastWrite` edge families of Allamanis
/// et al. (*Learning to Represent Programs with Graphs*): semantic
/// links the pure AST path family cannot express. The edges themselves
/// are produced by the data-flow engine in `pigeon-analysis`; this
/// crate only turns them into typed path-contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlowKind {
    /// `from` reads or writes a variable whose value may last have been
    /// *read* at `to`.
    LastUse,
    /// `from` reads or writes a variable whose value may last have been
    /// *written* at `to`.
    LastWrite,
}

impl FlowKind {
    /// Stable short tag used as the feature-string prefix and metric
    /// label (`lu` / `lw`). Never reused for a different edge family.
    pub fn tag(self) -> &'static str {
        match self {
            FlowKind::LastUse => "lu",
            FlowKind::LastWrite => "lw",
        }
    }
}

/// One typed data-flow edge between two terminal occurrences of a
/// variable in the same function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowEdge {
    pub kind: FlowKind,
    /// The occurrence the flow fact is *about*.
    pub from: NodeId,
    /// The reaching definition or use it may see.
    pub to: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Direction;

    #[test]
    fn display_matches_example_4_5() {
        let path = AstPath::new(
            vec![
                Kind::new("SymbolVar"),
                Kind::new("VarDef"),
                Kind::new("Sub"),
                Kind::new("SymbolRef"),
            ],
            vec![Direction::Up, Direction::Down, Direction::Down],
        );
        let ctx = PathContext {
            start: PathEnd::Value(Symbol::new("item")),
            path,
            end: PathEnd::Value(Symbol::new("array")),
            start_node: NodeId::from_raw(0),
            end_node: NodeId::from_raw(1),
        };
        assert_eq!(
            ctx.display_triple(),
            "⟨item, SymbolVar ↑ VarDef ↓ Sub ↓ SymbolRef, array⟩"
        );
    }

    #[test]
    fn flip_is_involutive() {
        let path = AstPath::new(vec![Kind::new("A"), Kind::new("B")], vec![Direction::Up]);
        let ctx = PathContext {
            start: PathEnd::Value(Symbol::new("x")),
            path,
            end: PathEnd::Node(Kind::new("B")),
            start_node: NodeId::from_raw(0),
            end_node: NodeId::from_raw(1),
        };
        assert_eq!(ctx.flipped().flipped(), ctx);
    }

    #[test]
    fn path_end_value_accessor() {
        assert_eq!(
            PathEnd::Value(Symbol::new("x")).value(),
            Some(Symbol::new("x"))
        );
        assert_eq!(PathEnd::Node(Kind::new("If")).value(), None);
    }
}
