//! A dependency-free scoped worker pool for the per-source stages of the
//! pipeline (parse, extract), which dominate wall-clock time and are
//! embarrassingly parallel.
//!
//! The pool hands out item indices from a shared atomic counter, each
//! worker collects `(index, result)` pairs into a local buffer, and the
//! caller receives results **in item order** regardless of which worker
//! processed what — so a downstream consumer that interns features in
//! encounter order produces output byte-identical to a serial run.

use pigeon_telemetry as telemetry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Resolves a `jobs` knob to a concrete worker count: `0` means "use all
/// available parallelism", anything else is taken literally.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Applies `f` to every item and returns the results in item order.
///
/// With `jobs <= 1` (after [`effective_jobs`] resolution) this is a plain
/// serial map on the calling thread. Otherwise `jobs` scoped threads pull
/// indices from a shared counter; work-stealing granularity is one item,
/// so uneven per-item cost balances naturally.
///
/// # Panics
///
/// Propagates a panic from `f` (the pool joins every worker).
pub fn parallel_map_indexed<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len().max(1));
    telemetry::count("pigeon_pool_items_total", items.len() as u64);
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Telemetry recorded inside `f` must not depend on thread
    // interleaving: each worker writes into a private shard of the
    // caller's sink, and shards merge back in worker order after the
    // join — the same ordered-merge discipline as the result slots.
    let sink = if telemetry::enabled() {
        Some(telemetry::current())
    } else {
        None
    };
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                let (sink, next, f) = (&sink, &next, &f);
                scope.spawn(move || {
                    let shard = sink.as_ref().map(|parent| Arc::new(parent.shard()));
                    let run = || {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, f(i, &items[i])));
                        }
                        local
                    };
                    let local = match &shard {
                        Some(shard) => telemetry::with_shard(shard, run),
                        None => run(),
                    };
                    (local, shard)
                })
            })
            .collect();
        for handle in handles {
            let (local, shard) = handle.join().expect("worker thread panicked");
            if let (Some(parent), Some(shard)) = (&sink, shard) {
                parent.merge(&shard);
            }
            for (i, r) in local {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("counter visits every index exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [0, 1, 2, 4, 7] {
            let par = parallel_map_indexed(&items, jobs, |_, &x| x * x);
            assert_eq!(par, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d", "e"];
        let out = parallel_map_indexed(&items, 3, |i, s| format!("{i}:{s}"));
        assert_eq!(out, ["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn more_workers_than_items() {
        let items = vec![1, 2];
        assert_eq!(parallel_map_indexed(&items, 16, |_, &x| x + 1), [2, 3]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = Vec::new();
        assert!(parallel_map_indexed(&items, 4, |_, &x| x).is_empty());
    }

    #[test]
    fn zero_means_available_parallelism() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }
}
