//! Alpha-renaming-normalized AST fingerprints.
//!
//! Two programs that differ only in the identifiers they chose hash to
//! the same fingerprint: every terminal value is replaced by the dense
//! index of its first occurrence before hashing, so `var a = a + 1` and
//! `var b = b + 1` are indistinguishable, while any structural or
//! kind-level difference changes the hash. The evaluation layer uses
//! fingerprints to keep exact-duplicate programs from straddling a
//! train/test split, and the audit layer uses them to measure
//! intra-corpus duplication — the evaluation-hygiene concern that decides
//! whether reported accuracies mean anything.

use pigeon_ast::Ast;
use std::collections::HashMap;

/// 64-bit FNV-1a, the workhorse hash of the fingerprint module: stable
/// across platforms and runs (no `RandomState`), so fingerprints can be
/// recorded in docs and compared between processes.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher in its initial state.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The accumulated hash.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Hashes one byte string from scratch.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// The alpha-renaming-normalized structural fingerprint of `ast`.
///
/// The hash covers, in preorder: each node's kind, its child count, and —
/// for terminals — the first-occurrence index of its value. Identifier
/// *choices* therefore do not matter, but identifier *equality structure*
/// does: renaming `count` to `total` everywhere preserves the
/// fingerprint, while merging two distinct names into one changes it.
///
/// ```
/// use pigeon_ast::AstBuilder;
/// use pigeon_core::normalized_fingerprint;
///
/// let tree = |a: &str, b: &str| {
///     let mut t = AstBuilder::new("Toplevel");
///     t.token("SymbolRef", a);
///     t.token("SymbolRef", b);
///     t.token("SymbolRef", a);
///     t.finish()
/// };
/// // Same equality structure, different names: identical fingerprints.
/// assert_eq!(
///     normalized_fingerprint(&tree("x", "y")),
///     normalized_fingerprint(&tree("done", "flag")),
/// );
/// // Collapsing the two names changes the structure.
/// assert_ne!(
///     normalized_fingerprint(&tree("x", "y")),
///     normalized_fingerprint(&tree("x", "x")),
/// );
/// ```
pub fn normalized_fingerprint(ast: &Ast) -> u64 {
    let mut h = Fnv64::new();
    let mut first_seen: HashMap<&str, u64> = HashMap::new();
    for id in ast.preorder() {
        h.write(ast.kind(id).as_str().as_bytes());
        h.write_u64(ast.children(id).len() as u64);
        if let Some(value) = ast.value(id) {
            let next = first_seen.len() as u64;
            let ordinal = *first_seen.entry(value.as_str()).or_insert(next);
            h.write_u64(ordinal);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pigeon_ast::AstBuilder;

    fn leafy(values: &[&str]) -> Ast {
        let mut b = AstBuilder::new("Toplevel");
        for &v in values {
            b.token("SymbolRef", v);
        }
        b.finish()
    }

    #[test]
    fn deterministic_across_calls() {
        let ast = leafy(&["a", "b", "a"]);
        assert_eq!(normalized_fingerprint(&ast), normalized_fingerprint(&ast));
    }

    #[test]
    fn alpha_renaming_is_invisible() {
        assert_eq!(
            normalized_fingerprint(&leafy(&["a", "b", "a"])),
            normalized_fingerprint(&leafy(&["q", "r", "q"])),
        );
    }

    #[test]
    fn equality_structure_matters() {
        assert_ne!(
            normalized_fingerprint(&leafy(&["a", "b", "a"])),
            normalized_fingerprint(&leafy(&["a", "b", "b"])),
        );
    }

    #[test]
    fn kinds_matter() {
        let mut b = AstBuilder::new("Toplevel");
        b.token("NameRef", "a");
        let renamed_kind = b.finish();
        assert_ne!(
            normalized_fingerprint(&leafy(&["a"])),
            normalized_fingerprint(&renamed_kind),
        );
    }

    #[test]
    fn shape_matters() {
        let mut b = AstBuilder::new("Toplevel");
        b.start_node("Block");
        b.token("SymbolRef", "a");
        b.finish_node();
        let nested = b.finish();
        assert_ne!(
            normalized_fingerprint(&leafy(&["a"])),
            normalized_fingerprint(&nested),
        );
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned values: the fingerprint contract is cross-process
        // stability, so the underlying hash must never drift. The empty
        // input yields the FNV-1a offset basis by definition.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"pigeon"), fnv64(b"pigeons"));
    }
}
