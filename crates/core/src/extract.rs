//! Path-context extraction (§4 of the paper).
//!
//! Given a parsed [`Ast`], the extractor produces the path-contexts that
//! represent its program elements:
//!
//! * **leafwise paths** between pairs of terminals — the workhorse
//!   representation;
//! * **semi-paths** between a terminal and one of its ancestors, which
//!   "provide more generalization" (§5);
//! * **leaf-to-nonterminal paths** towards an arbitrary target node, used
//!   by the full-type prediction task where the element in question is an
//!   expression nonterminal.
//!
//! Extraction enforces the two hyper-parameters of §4.2: `max_length`
//! (number of edges) and `max_width` (maximal sibling-index difference at
//! the path's top node, cf. Fig. 5).

use crate::context::{FlowEdge, FlowKind, PathContext, PathEnd};
use crate::path::{AstPath, Direction};
use pigeon_ast::{Ast, Kind, NodeId};
use pigeon_telemetry as telemetry;
use std::collections::HashMap;

/// Counter family for extracted path-contexts, split by `kind` label
/// (`leaf_pair`, `semi_path`, `to_node`).
const PATHS_TOTAL: &str = "pigeon_paths_extracted_total";

/// Counter family for data-flow path-contexts, split by `kind` label
/// (`last_use`, `last_write`). Public so the facade can register the
/// family eagerly and keep `/v1/metrics` byte-stable.
pub const DATAFLOW_CONTEXTS_TOTAL: &str = "pigeon_dataflow_contexts_total";

/// Hyper-parameters controlling which paths are extracted.
///
/// The defaults are the paper's best variable-name parameters for
/// JavaScript (`max_length = 7`, `max_width = 3`, Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractionConfig {
    /// Maximal number of edges in a path (`max_length`, §4.2).
    pub max_length: usize,
    /// Maximal sibling distance at the top node (`max_width`, §4.2).
    /// Ancestor–descendant paths have width 0 and are never width-limited.
    pub max_width: usize,
    /// Also emit semi-paths (terminal → ancestor) for every leaf.
    pub semi_paths: bool,
}

impl ExtractionConfig {
    /// Config with the given length and width limits and no semi-paths.
    pub fn with_limits(max_length: usize, max_width: usize) -> Self {
        ExtractionConfig {
            max_length,
            max_width,
            semi_paths: false,
        }
    }

    /// Enables or disables semi-path extraction.
    pub fn semi_paths(mut self, on: bool) -> Self {
        self.semi_paths = on;
        self
    }
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        ExtractionConfig {
            max_length: 7,
            max_width: 3,
            semi_paths: false,
        }
    }
}

fn path_end(ast: &Ast, id: NodeId) -> PathEnd {
    match ast.value(id) {
        Some(v) => PathEnd::Value(v),
        None => PathEnd::Node(ast.kind(id)),
    }
}

/// The chain of nodes from `node` up to (and including) `stop`.
fn chain_to(ast: &Ast, node: NodeId, stop: NodeId) -> Vec<NodeId> {
    let mut chain = vec![node];
    let mut cur = node;
    while cur != stop {
        cur = ast.parent(cur).expect("stop must be an ancestor of node");
        chain.push(cur);
    }
    chain
}

/// The concrete path between two nodes of one tree, via their lowest
/// common ancestor. Returns the path and its width.
///
/// The width is the absolute difference of the sibling indices of the two
/// children of the LCA through which the path passes (Fig. 5); paths where
/// one node is an ancestor of the other have width 0.
///
/// # Panics
///
/// Panics if `a == b` (a path needs two distinct ends) or if the ids do
/// not belong to `ast`.
pub fn path_between(ast: &Ast, a: NodeId, b: NodeId) -> (AstPath, usize) {
    assert_ne!(a, b, "a path connects two distinct nodes");
    let lca = ast.lowest_common_ancestor(a, b);
    let up = chain_to(ast, a, lca);
    let down = chain_to(ast, b, lca);

    let width = if up.len() >= 2 && down.len() >= 2 {
        let ca = ast.child_index(up[up.len() - 2]);
        let cb = ast.child_index(down[down.len() - 2]);
        ca.abs_diff(cb)
    } else {
        0
    };

    let mut kinds = Vec::with_capacity(up.len() + down.len() - 1);
    let mut dirs = Vec::with_capacity(up.len() + down.len() - 2);
    for &n in &up {
        kinds.push(ast.kind(n));
    }
    dirs.extend(std::iter::repeat_n(Direction::Up, up.len() - 1));
    for &n in down.iter().rev().skip(1) {
        kinds.push(ast.kind(n));
        dirs.push(Direction::Down);
    }
    (AstPath::new(kinds, dirs), width)
}

/// A surviving leaf pair discovered by the upward merge, before its
/// path is materialized: leaf ordinals plus distances to the LCA.
struct PendingPair {
    a: u32,
    b: u32,
    /// Edges from leaf `a` up to the LCA.
    up: u32,
    /// Edges from the LCA down to leaf `b`.
    down: u32,
    lca: NodeId,
}

/// Extracts all leafwise path-contexts of `ast` within the config's
/// limits. Each unordered pair of terminals is emitted once, oriented
/// left-to-right in source order; use
/// [`PathContext::flipped`] for the other orientation.
///
/// Implementation: a single bottom-up merge pass. Every node carries the
/// leaves of its subtree (with their distance to the node) capped at
/// `max_length - 1` edges; at each nonterminal, leaves from distinct
/// children pair up exactly when their combined distance fits
/// `max_length` and the children's sibling gap fits `max_width` — the
/// node is their lowest common ancestor by construction. Pairs are
/// pruned *before* any path is allocated, and identical kind-sequences
/// are interned through a per-AST cache, unlike the former
/// [`path_between`]-per-pair loop which re-walked the tree and
/// re-allocated for all `O(leaves²)` candidates.
pub fn leaf_pair_contexts(ast: &Ast, cfg: &ExtractionConfig) -> Vec<PathContext> {
    let _span = telemetry::span("extract_doc");
    telemetry::count("pigeon_documents_extracted_total", 1);
    if cfg.max_length < 2 {
        // A leafwise path climbs at least one edge and descends at least
        // one, so nothing can survive.
        return Vec::new();
    }
    let leaves = ast.leaves();
    if leaves.len() < 2 {
        return Vec::new();
    }
    let mut leaf_ordinal = vec![u32::MAX; ast.len()];
    for (i, &l) in leaves.iter().enumerate() {
        leaf_ordinal[l.index()] = i as u32;
    }

    // Per-leaf ancestor kind chains, shared by every pair the leaf joins:
    // chain[r] is the kind r edges above the leaf (chain[0] = the leaf).
    // A leaf `max_length - 1` edges below its LCA is the farthest that
    // can still pair, so deeper ancestors are never needed.
    let chains: Vec<Vec<Kind>> = leaves
        .iter()
        .map(|&l| {
            let mut chain = Vec::with_capacity(cfg.max_length);
            chain.push(ast.kind(l));
            for anc in ast.ancestors(l).take(cfg.max_length - 1) {
                chain.push(ast.kind(anc));
            }
            chain
        })
        .collect();

    // Bottom-up merge. The arena is in preorder, so walking indices in
    // reverse visits every child before its parent. `subtree[v]` holds
    // `(leaf ordinal, edges from leaf to v)` for the live leaves of v's
    // subtree, in source order.
    let mut subtree: Vec<Vec<(u32, u32)>> = vec![Vec::new(); ast.len()];
    let mut pending: Vec<PendingPair> = Vec::new();
    for raw in (0..ast.len() as u32).rev() {
        let v = NodeId::from_raw(raw);
        let ord = leaf_ordinal[v.index()];
        if ord != u32::MAX {
            subtree[v.index()] = vec![(ord, 0)];
            continue;
        }
        let children = ast.children(v);
        // Segments of already-merged children, tagged with their child
        // index: the width of a pair meeting at `v` is the sibling gap
        // between the two children the leaves came through.
        let mut segs: Vec<(usize, Vec<(u32, u32)>)> = Vec::new();
        for (cj, &c) in children.iter().enumerate() {
            let mut child_leaves = std::mem::take(&mut subtree[c.index()]);
            // Lift distances to `v`; a leaf farther than `max_length - 1`
            // edges away can never complete a path (the other side costs
            // at least one more edge), so it drops out here — before any
            // pairing work.
            child_leaves.retain_mut(|entry| {
                entry.1 += 1;
                (entry.1 as usize) < cfg.max_length
            });
            if child_leaves.is_empty() {
                continue;
            }
            for &(ci, ref a_leaves) in &segs {
                if cj - ci > cfg.max_width {
                    continue;
                }
                for &(a_ord, a_rel) in a_leaves {
                    for &(b_ord, b_rel) in &child_leaves {
                        if (a_rel + b_rel) as usize <= cfg.max_length {
                            pending.push(PendingPair {
                                a: a_ord,
                                b: b_ord,
                                up: a_rel,
                                down: b_rel,
                                lca: v,
                            });
                        }
                    }
                }
            }
            segs.push((cj, child_leaves));
        }
        let mut merged = Vec::with_capacity(segs.iter().map(|(_, l)| l.len()).sum());
        for (_, leaves) in segs {
            merged.extend(leaves);
        }
        subtree[v.index()] = merged;
    }

    // Materialize in the order the former pairwise loop produced:
    // sorted by (left ordinal, right ordinal).
    pending.sort_unstable_by_key(|p| (p.a, p.b));
    let mut cache: HashMap<(Vec<Kind>, u32), AstPath> = HashMap::new();
    let mut out = Vec::with_capacity(pending.len());
    for p in pending {
        let (a, b) = (p.a as usize, p.b as usize);
        let mut kinds = Vec::with_capacity(p.up as usize + p.down as usize + 1);
        kinds.extend_from_slice(&chains[a][..p.up as usize]);
        kinds.push(ast.kind(p.lca));
        kinds.extend(chains[b][..p.down as usize].iter().rev().copied());
        let path = cache
            .entry((kinds, p.up))
            .or_insert_with_key(|(kinds, up)| {
                let mut dirs = Vec::with_capacity(kinds.len() - 1);
                dirs.extend(std::iter::repeat_n(Direction::Up, *up as usize));
                dirs.extend(std::iter::repeat_n(
                    Direction::Down,
                    kinds.len() - 1 - *up as usize,
                ));
                AstPath::new(kinds.clone(), dirs)
            })
            .clone();
        out.push(PathContext {
            start: PathEnd::Value(ast.value(leaves[a]).expect("leaves carry values")),
            path,
            end: PathEnd::Value(ast.value(leaves[b]).expect("leaves carry values")),
            start_node: leaves[a],
            end_node: leaves[b],
        });
    }
    telemetry::count_with(PATHS_TOTAL, &[("kind", "leaf_pair")], out.len() as u64);
    out
}

/// Extracts semi-paths: for every terminal, the pure-up path to each of
/// its proper ancestors, up to `max_length` edges. The far end of a
/// semi-path is the ancestor's kind.
pub fn semi_path_contexts(ast: &Ast, cfg: &ExtractionConfig) -> Vec<PathContext> {
    let mut out = Vec::new();
    for &leaf in ast.leaves() {
        let value = ast.value(leaf).expect("leaves carry values");
        let mut kinds = vec![ast.kind(leaf)];
        let mut dirs = Vec::new();
        for anc in ast.ancestors(leaf) {
            kinds.push(ast.kind(anc));
            dirs.push(Direction::Up);
            if dirs.len() > cfg.max_length {
                break;
            }
            out.push(PathContext {
                start: PathEnd::Value(value),
                path: AstPath::new(kinds.clone(), dirs.clone()),
                end: PathEnd::Node(ast.kind(anc)),
                start_node: leaf,
                end_node: anc,
            });
        }
    }
    telemetry::count_with(PATHS_TOTAL, &[("kind", "semi_path")], out.len() as u64);
    out
}

/// Extracts paths from every terminal to one designated `target` node
/// (typically an expression nonterminal whose type is being predicted,
/// §5.3.3). The target end is reported as the target's kind when it is a
/// nonterminal.
///
/// Implementation: the target's ancestor chain is indexed once; each
/// leaf then climbs at most `max_length` edges until it meets that chain
/// — the meeting point is the lowest common ancestor, no quadratic
/// [`path_between`] walk needed — and pairs that exceed the length or
/// width limits are pruned before any path is allocated. Identical
/// kind-sequences are interned through the same per-call cache the
/// leafwise merge pass uses, so repeated shapes share one `AstPath`.
pub fn contexts_to_node(ast: &Ast, target: NodeId, cfg: &ExtractionConfig) -> Vec<PathContext> {
    // `chain[d]` is the node `d` edges above the target (chain[0] = the
    // target); `chain_depth` inverts it for O(1) LCA detection.
    let mut chain: Vec<NodeId> = vec![target];
    chain.extend(ast.ancestors(target));
    let mut chain_depth: HashMap<NodeId, u32> = HashMap::new();
    for (d, &n) in chain.iter().enumerate() {
        chain_depth.insert(n, d as u32);
    }
    let end = path_end(ast, target);

    let mut cache: HashMap<(Vec<Kind>, u32), AstPath> = HashMap::new();
    let mut out = Vec::new();
    for &leaf in ast.leaves() {
        if leaf == target {
            continue;
        }
        // Climb from the leaf, collecting kinds strictly below the LCA;
        // stop as soon as the path can no longer fit `max_length`.
        let mut kinds = vec![ast.kind(leaf)];
        let mut below_lca = leaf;
        let mut lca = None;
        let mut up = 0u32;
        for anc in ast.ancestors(leaf) {
            up += 1;
            if up as usize > cfg.max_length {
                break;
            }
            if let Some(&down) = chain_depth.get(&anc) {
                lca = Some((anc, down));
                break;
            }
            kinds.push(ast.kind(anc));
            below_lca = anc;
        }
        let Some((lca, down)) = lca else {
            continue;
        };
        if (up + down) as usize > cfg.max_length {
            continue;
        }
        // Width per Fig. 5: the sibling gap between the two children of
        // the LCA the path passes through; ancestor–descendant paths
        // (the target hangs below the LCA == target case) have width 0.
        if down > 0 {
            let target_side = chain[down as usize - 1];
            let width = ast
                .child_index(below_lca)
                .abs_diff(ast.child_index(target_side));
            if width > cfg.max_width {
                continue;
            }
        }
        kinds.push(ast.kind(lca));
        kinds.extend(chain[..down as usize].iter().rev().map(|&n| ast.kind(n)));
        let path = cache
            .entry((kinds, up))
            .or_insert_with_key(|(kinds, up)| {
                let mut dirs = Vec::with_capacity(kinds.len() - 1);
                dirs.extend(std::iter::repeat_n(Direction::Up, *up as usize));
                dirs.extend(std::iter::repeat_n(
                    Direction::Down,
                    kinds.len() - 1 - *up as usize,
                ));
                AstPath::new(kinds.clone(), dirs)
            })
            .clone();
        out.push(PathContext {
            start: PathEnd::Value(ast.value(leaf).expect("leaves carry values")),
            path,
            end,
            start_node: leaf,
            end_node: target,
        });
    }
    // Counter only: this runs per predicted node on the serve hot path,
    // where a span per call would dominate the cost being measured.
    telemetry::count_with(PATHS_TOTAL, &[("kind", "to_node")], out.len() as u64);
    out
}

/// Turns typed data-flow edges (from the analysis engine) into
/// edge-typed path-contexts.
///
/// Each edge becomes the concrete AST path between its two occurrence
/// leaves, tagged with the edge's [`FlowKind`]. Because the edges are
/// already semantically filtered (an edge only exists between
/// occurrences of *one* variable linked by the flow analysis), the
/// syntactic pruning of §4.2 is relaxed: the width limit does not apply,
/// and the length budget is doubled — a last-write half a function away
/// is exactly the signal the AST path family cannot afford to keep.
/// Self-edges (a loop makes an occurrence reach itself) are skipped.
///
/// The output order follows the input edge order; callers sort the edge
/// list, so the result is deterministic and jobs-invariant.
pub fn flow_contexts(
    ast: &Ast,
    edges: &[FlowEdge],
    cfg: &ExtractionConfig,
) -> Vec<(FlowKind, PathContext)> {
    let mut cache: HashMap<(Vec<Kind>, u32), AstPath> = HashMap::new();
    let mut out = Vec::new();
    for e in edges {
        if e.from == e.to {
            continue;
        }
        let (path, _width) = path_between(ast, e.from, e.to);
        if path.len() > cfg.max_length * 2 {
            continue;
        }
        // Intern identical kind-sequences like the other extractors.
        let ups = path
            .directions()
            .iter()
            .filter(|&&d| d == Direction::Up)
            .count() as u32;
        let path = cache
            .entry((path.kinds().to_vec(), ups))
            .or_insert(path)
            .clone();
        out.push((
            e.kind,
            PathContext {
                start: path_end(ast, e.from),
                path,
                end: path_end(ast, e.to),
                start_node: e.from,
                end_node: e.to,
            },
        ));
    }
    for (kind, label) in [
        (FlowKind::LastUse, "last_use"),
        (FlowKind::LastWrite, "last_write"),
    ] {
        let n = out.iter().filter(|(k, _)| *k == kind).count();
        telemetry::count_with(DATAFLOW_CONTEXTS_TOTAL, &[("kind", label)], n as u64);
    }
    out
}

/// Full extraction: leafwise pairs plus (if configured) semi-paths.
///
/// ```
/// use pigeon_ast::AstBuilder;
/// use pigeon_core::{extract, ExtractionConfig};
///
/// let mut b = AstBuilder::new("Toplevel");
/// b.start_node("Assign=");
/// b.token("SymbolRef", "d");
/// b.token("True", "true");
/// b.finish_node();
/// let ast = b.finish();
///
/// let ctxs = extract(&ast, &ExtractionConfig::default());
/// assert_eq!(ctxs.len(), 1);
/// assert_eq!(ctxs[0].display_triple(), "⟨d, SymbolRef ↑ Assign= ↓ True, true⟩");
/// ```
pub fn extract(ast: &Ast, cfg: &ExtractionConfig) -> Vec<PathContext> {
    let mut out = leaf_pair_contexts(ast, cfg);
    if cfg.semi_paths {
        out.extend(semi_path_contexts(ast, cfg));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pigeon_ast::{AstBuilder, Symbol};

    /// The AST of Fig. 1: `while (!d) { if (someCondition()) { d = true; } }`
    fn fig1_ast() -> Ast {
        let mut b = AstBuilder::new("Toplevel");
        b.start_node("While");
        b.start_node("UnaryPrefix!");
        b.token("SymbolRef", "d");
        b.finish_node();
        b.start_node("If");
        b.start_node("Call");
        b.token("SymbolRef", "someCondition");
        b.finish_node();
        b.start_node("Assign=");
        b.token("SymbolRef", "d");
        b.token("True", "true");
        b.finish_node();
        b.finish_node();
        b.finish_node();
        b.finish()
    }

    /// Fig. 5: `var a, b, c, d;`.
    fn fig5_ast() -> Ast {
        let mut b = AstBuilder::new("Toplevel");
        b.start_node("Var");
        for name in ["a", "b", "c", "d"] {
            b.start_node("VarDef");
            b.token("SymbolVar", name);
            b.finish_node();
        }
        b.finish_node();
        b.finish()
    }

    fn context_between(ast: &Ast, a: &str, b: &str) -> Vec<PathContext> {
        let cfg = ExtractionConfig::with_limits(16, 16);
        leaf_pair_contexts(ast, &cfg)
            .into_iter()
            .filter(|c| c.start.as_str() == a && c.end.as_str() == b)
            .collect()
    }

    #[test]
    fn fig1_d_to_d_path_matches_paper() {
        let ast = fig1_ast();
        let ctxs = context_between(&ast, "d", "d");
        assert_eq!(ctxs.len(), 1);
        assert_eq!(
            ctxs[0].path.to_string(),
            "SymbolRef ↑ UnaryPrefix! ↑ While ↓ If ↓ Assign= ↓ SymbolRef"
        );
    }

    #[test]
    fn fig1_d_to_true_path_matches_paper() {
        let ast = fig1_ast();
        let ctxs = context_between(&ast, "d", "true");
        // Two `d` occurrences reach `true`; the short one is path II of §2.
        let short = ctxs.iter().map(|c| c.path.len()).min().unwrap();
        let p = ctxs.iter().find(|c| c.path.len() == short).unwrap();
        assert_eq!(p.path.to_string(), "SymbolRef ↑ Assign= ↓ True");
    }

    #[test]
    fn fig5_length_and_width_match_paper() {
        let ast = fig5_ast();
        let a = ast.leaves()[0];
        let d = ast.leaves()[3];
        let (path, width) = path_between(&ast, a, d);
        assert_eq!(path.len(), 4, "Fig. 5: the a–d path has length 4");
        assert_eq!(width, 3, "Fig. 5: the a–d path has width 3");
        assert_eq!(
            path.to_string(),
            "SymbolVar ↑ VarDef ↑ Var ↓ VarDef ↓ SymbolVar"
        );
    }

    #[test]
    fn width_limit_prunes_distant_siblings() {
        let ast = fig5_ast();
        let narrow = leaf_pair_contexts(&ast, &ExtractionConfig::with_limits(16, 1));
        // width-1 keeps only adjacent declarations: a-b, b-c, c-d.
        assert_eq!(narrow.len(), 3);
        let wide = leaf_pair_contexts(&ast, &ExtractionConfig::with_limits(16, 3));
        assert_eq!(wide.len(), 6);
    }

    #[test]
    fn length_limit_prunes_long_paths() {
        let ast = fig1_ast();
        let all = leaf_pair_contexts(&ast, &ExtractionConfig::with_limits(16, 16));
        let short = leaf_pair_contexts(&ast, &ExtractionConfig::with_limits(3, 16));
        assert!(short.len() < all.len());
        assert!(short.iter().all(|c| c.path.len() <= 3));
    }

    #[test]
    fn ancestor_descendant_paths_have_width_zero() {
        let ast = fig1_ast();
        let d = ast.leaves()[0];
        let root = ast.root();
        let (path, width) = path_between(&ast, d, root);
        assert_eq!(width, 0);
        assert_eq!(
            path.to_string(),
            "SymbolRef ↑ UnaryPrefix! ↑ While ↑ Toplevel"
        );
    }

    #[test]
    fn semi_paths_walk_to_ancestors() {
        let ast = fig1_ast();
        let cfg = ExtractionConfig::with_limits(2, 3).semi_paths(true);
        let semis = semi_path_contexts(&ast, &cfg);
        // Every semi-path is pure-up and at most 2 edges.
        assert!(!semis.is_empty());
        for s in &semis {
            assert!(s.path.len() <= 2);
            assert!(s.path.directions().iter().all(|&d| d == Direction::Up));
            assert!(matches!(s.end, PathEnd::Node(_)));
        }
        // The d-leaf yields `SymbolRef ↑ UnaryPrefix!` among them.
        assert!(semis
            .iter()
            .any(|s| s.display_triple() == "⟨d, SymbolRef ↑ UnaryPrefix!, UnaryPrefix!⟩"));
    }

    #[test]
    fn contexts_to_node_targets_a_nonterminal() {
        let ast = fig1_ast();
        // Find the Assign= node.
        let assign = ast
            .preorder()
            .find(|&n| ast.kind(n).as_str() == "Assign=")
            .unwrap();
        let ctxs = contexts_to_node(&ast, assign, &ExtractionConfig::with_limits(8, 8));
        assert!(ctxs
            .iter()
            .any(|c| c.display_triple() == "⟨d, SymbolRef ↑ Assign=, Assign=⟩"));
        assert!(ctxs
            .iter()
            .any(|c| c.display_triple() == "⟨true, True ↑ Assign=, Assign=⟩"));
        // `d` under UnaryPrefix! reaches the Assign= too, going up then
        // down: SymbolRef ↑ UnaryPrefix! ↑ While ↓ If ↓ Assign= (4 edges).
        assert!(ctxs
            .iter()
            .any(|c| { c.start.as_str() == "d" && c.path.len() == 4 }));
    }

    /// The pre-rewrite `contexts_to_node`: one [`path_between`] walk per
    /// leaf, filtered after materialization. Kept as the behavioural
    /// reference for the chain-walk implementation.
    fn contexts_to_node_reference(
        ast: &Ast,
        target: NodeId,
        cfg: &ExtractionConfig,
    ) -> Vec<PathContext> {
        let mut out = Vec::new();
        for &leaf in ast.leaves() {
            if leaf == target {
                continue;
            }
            let (path, width) = path_between(ast, leaf, target);
            if path.len() > cfg.max_length || width > cfg.max_width {
                continue;
            }
            out.push(PathContext {
                start: PathEnd::Value(ast.value(leaf).expect("leaves carry values")),
                path,
                end: path_end(ast, target),
                start_node: leaf,
                end_node: target,
            });
        }
        out
    }

    #[test]
    fn contexts_to_node_matches_pairwise_reference() {
        for ast in [fig1_ast(), fig5_ast()] {
            for target in ast.preorder() {
                for (len, width) in [(2, 1), (3, 2), (4, 1), (8, 3), (16, 16)] {
                    let cfg = ExtractionConfig::with_limits(len, width);
                    assert_eq!(
                        contexts_to_node(&ast, target, &cfg),
                        contexts_to_node_reference(&ast, target, &cfg),
                        "target {target:?}, max_length {len}, max_width {width}"
                    );
                }
            }
        }
    }

    #[test]
    fn extract_merges_semi_paths_when_enabled() {
        let ast = fig1_ast();
        let plain = extract(&ast, &ExtractionConfig::with_limits(8, 3));
        let with_semis = extract(&ast, &ExtractionConfig::with_limits(8, 3).semi_paths(true));
        assert!(with_semis.len() > plain.len());
    }

    #[test]
    fn occurrences_pair_once_per_unordered_pair() {
        let ast = fig5_ast();
        let ctxs = leaf_pair_contexts(&ast, &ExtractionConfig::with_limits(16, 16));
        // C(4, 2) = 6 pairs.
        assert_eq!(ctxs.len(), 6);
        let names: Vec<(String, String)> = ctxs
            .iter()
            .map(|c| (c.start.as_str().to_owned(), c.end.as_str().to_owned()))
            .collect();
        assert!(names.contains(&("a".into(), "d".into())));
        assert!(!names.contains(&("d".into(), "a".into())));
    }

    #[test]
    fn element_occurrence_values_survive_extraction() {
        let ast = fig1_ast();
        let d = Symbol::new("d");
        assert_eq!(ast.leaves_with_value(d).len(), 2);
    }
}
