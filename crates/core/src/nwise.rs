//! n-wise path contexts (§4.1: "in general we consider n-wise paths,
//! i.e., those that have more than two ends").
//!
//! A pairwise path connects two nodes through their lowest common
//! ancestor. An *n-wise* path connects `n` nodes through the LCA of the
//! whole set: a star of walks sharing one top node. The paper's
//! experiments use pairwise paths for tractability; this module
//! implements the generalisation the family is defined over, with
//! triple-wise extraction as the practical instance.

use crate::context::PathEnd;
use crate::extract::{path_between, ExtractionConfig};
use crate::path::AstPath;
use pigeon_ast::{Ast, NodeId};

/// An n-wise path context: `n` end values and the star of paths from the
/// first end to each other end (all sharing the top node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NWiseContext {
    /// The end values, in source order.
    pub ends: Vec<PathEnd>,
    /// The end nodes, in source order.
    pub nodes: Vec<NodeId>,
    /// Paths from the first end to each subsequent end.
    pub paths: Vec<AstPath>,
}

impl NWiseContext {
    /// Number of ends (`n`).
    pub fn arity(&self) -> usize {
        self.ends.len()
    }

    /// Renders the context as `⟨x₁, …, x_n | p₂; …; p_n⟩`.
    pub fn display(&self) -> String {
        let ends: Vec<&str> = self.ends.iter().map(|e| e.as_str()).collect();
        let paths: Vec<String> = self.paths.iter().map(|p| p.to_string()).collect();
        format!("⟨{} | {}⟩", ends.join(", "), paths.join("; "))
    }
}

/// Extracts all triple-wise contexts among consecutive leaf triples
/// within the configured limits. Consecutive triples keep the count
/// linear in the number of leaves while still capturing the
/// "three elements in one construct" signal pairwise paths miss.
pub fn triple_contexts(ast: &Ast, cfg: &ExtractionConfig) -> Vec<NWiseContext> {
    let leaves = ast.leaves();
    let mut out = Vec::new();
    if leaves.len() < 3 {
        return out;
    }
    for w in leaves.windows(3) {
        let (a, b, c) = (w[0], w[1], w[2]);
        let (pab, wab) = path_between(ast, a, b);
        let (pac, wac) = path_between(ast, a, c);
        if pab.len() > cfg.max_length
            || pac.len() > cfg.max_length
            || wab > cfg.max_width
            || wac > cfg.max_width
        {
            continue;
        }
        let end = |n: NodeId| PathEnd::Value(ast.value(n).expect("leaves carry values"));
        out.push(NWiseContext {
            ends: vec![end(a), end(b), end(c)],
            nodes: vec![a, b, c],
            paths: vec![pab, pac],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pigeon_ast::AstBuilder;

    fn fig5_ast() -> Ast {
        let mut b = AstBuilder::new("Toplevel");
        b.start_node("Var");
        for name in ["a", "b", "c", "d"] {
            b.start_node("VarDef");
            b.token("SymbolVar", name);
            b.finish_node();
        }
        b.finish_node();
        b.finish()
    }

    #[test]
    fn triples_cover_consecutive_leaves() {
        let ast = fig5_ast();
        let triples = triple_contexts(&ast, &ExtractionConfig::with_limits(8, 8));
        assert_eq!(triples.len(), 2, "a-b-c and b-c-d");
        assert_eq!(triples[0].arity(), 3);
        let ends: Vec<&str> = triples[0].ends.iter().map(|e| e.as_str()).collect();
        assert_eq!(ends, ["a", "b", "c"]);
    }

    #[test]
    fn limits_apply_to_every_arm() {
        let ast = fig5_ast();
        // a–c has width 2: width limit 1 rejects the a-b-c triple.
        let narrow = triple_contexts(&ast, &ExtractionConfig::with_limits(8, 1));
        assert!(narrow.is_empty());
        let wide = triple_contexts(&ast, &ExtractionConfig::with_limits(8, 2));
        assert_eq!(wide.len(), 2);
    }

    #[test]
    fn display_renders_all_ends() {
        let ast = fig5_ast();
        let triples = triple_contexts(&ast, &ExtractionConfig::with_limits(8, 8));
        let text = triples[0].display();
        assert!(text.starts_with("⟨a, b, c | "));
        assert!(text.contains("; "));
    }

    #[test]
    fn tiny_trees_yield_nothing() {
        let mut b = AstBuilder::new("Toplevel");
        b.token("SymbolRef", "x");
        let ast = b.finish();
        assert!(triple_contexts(&ast, &ExtractionConfig::default()).is_empty());
    }
}
