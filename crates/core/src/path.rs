//! AST paths (Definition 4.2).
//!
//! An AST path of length `k` is a sequence `n₁ d₁ … n_k d_k n_{k+1}` of
//! nodes joined by movement directions. [`AstPath`] stores the node *kinds*
//! along the walk together with the directions; the concrete node ids stay
//! with the [`PathContext`](crate::PathContext) that produced the path, so
//! equal walks through different trees compare equal — which is exactly
//! what lets paths "repeat across programs but also discriminate between
//! different programs" (paper §4.1).

use pigeon_ast::Kind;
use std::fmt;
use std::sync::Arc;

/// One movement step in an AST path: towards the root or away from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Move to the parent (`↑`).
    Up,
    /// Move to a child (`↓`).
    Down,
}

impl Direction {
    /// The arrow glyph used by the paper.
    pub fn arrow(self) -> char {
        match self {
            Direction::Up => '↑',
            Direction::Down => '↓',
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.arrow())
    }
}

/// A concrete AST path: `k+1` node kinds joined by `k` directions.
///
/// Invariant: `kinds.len() == dirs.len() + 1`, and the direction sequence
/// of any path produced by walking a tree is a (possibly empty) run of
/// [`Direction::Up`] followed by a (possibly empty) run of
/// [`Direction::Down`] — paths climb to the lowest common ancestor and
/// descend from it.
///
/// ```
/// use pigeon_core::{AstPath, Direction};
/// use pigeon_ast::Kind;
/// let p = AstPath::new(
///     vec![Kind::new("SymbolRef"), Kind::new("Assign="), Kind::new("True")],
///     vec![Direction::Up, Direction::Down],
/// );
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.to_string(), "SymbolRef ↑ Assign= ↓ True");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AstPath {
    // Shared slices rather than owned `Vec`s: the extractor's per-AST
    // path cache hands out clones of one allocation for every repeat of
    // a kind-sequence, which Fig. 5-style sibling fans produce en masse.
    // `Hash`/`Eq` on `Arc<[T]>` delegate to the slice contents, so equal
    // walks still compare equal across trees.
    kinds: Arc<[Kind]>,
    dirs: Arc<[Direction]>,
}

impl AstPath {
    /// Creates a path from its node kinds and directions.
    ///
    /// # Panics
    ///
    /// Panics if `kinds.len() != dirs.len() + 1` or if `kinds` is empty.
    pub fn new(kinds: Vec<Kind>, dirs: Vec<Direction>) -> Self {
        assert!(!kinds.is_empty(), "a path visits at least one node");
        assert_eq!(
            kinds.len(),
            dirs.len() + 1,
            "a path of k edges visits k+1 nodes"
        );
        AstPath {
            kinds: kinds.into(),
            dirs: dirs.into(),
        }
    }

    /// The length `k`: the number of edges (movements) in the path.
    ///
    /// This is the quantity bounded by the `max_length` hyper-parameter
    /// (paper §4.2).
    pub fn len(&self) -> usize {
        self.dirs.len()
    }

    /// Whether the path is a single node with no movement.
    pub fn is_empty(&self) -> bool {
        self.dirs.is_empty()
    }

    /// The node kinds visited, in walk order (`n₁ … n_{k+1}`).
    pub fn kinds(&self) -> &[Kind] {
        &self.kinds
    }

    /// The movement directions (`d₁ … d_k`).
    pub fn directions(&self) -> &[Direction] {
        &self.dirs
    }

    /// The kind of the first node `n₁` (`start(p)` in the paper).
    pub fn start_kind(&self) -> Kind {
        self.kinds[0]
    }

    /// The kind of the last node `n_{k+1}` (`end(p)` in the paper).
    pub fn end_kind(&self) -> Kind {
        *self.kinds.last().expect("paths are non-empty")
    }

    /// Index into [`kinds`](Self::kinds) of the *top* node: the
    /// hierarchically highest node, where the walk turns from going up to
    /// going down (paper §5.6, the "first-top-last" abstraction).
    ///
    /// For a pure-up path this is the last node; for a pure-down path the
    /// first; for a single-node path, index 0.
    pub fn top_index(&self) -> usize {
        self.dirs
            .iter()
            .position(|&d| d == Direction::Down)
            .unwrap_or(self.dirs.len())
    }

    /// The kind of the top node.
    pub fn top_kind(&self) -> Kind {
        self.kinds[self.top_index()]
    }

    /// The reversed walk: from `n_{k+1}` back to `n₁`, with directions
    /// flipped. Extraction uses this to derive the `b→a` path from the
    /// `a→b` path without re-walking the tree.
    pub fn reversed(&self) -> AstPath {
        let kinds: Vec<Kind> = self.kinds.iter().rev().copied().collect();
        let dirs: Vec<Direction> = self
            .dirs
            .iter()
            .rev()
            .map(|d| match d {
                Direction::Up => Direction::Down,
                Direction::Down => Direction::Up,
            })
            .collect();
        AstPath {
            kinds: kinds.into(),
            dirs: dirs.into(),
        }
    }
}

impl fmt::Display for AstPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, k) in self.kinds.iter().enumerate() {
            if i > 0 {
                write!(f, " {} ", self.dirs[i - 1].arrow())?;
            }
            write!(f, "{k}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for AstPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AstPath({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Kind {
        Kind::new(s)
    }

    fn fig1_path() -> AstPath {
        AstPath::new(
            vec![
                k("SymbolRef"),
                k("UnaryPrefix!"),
                k("While"),
                k("If"),
                k("Assign="),
                k("SymbolRef"),
            ],
            vec![
                Direction::Up,
                Direction::Up,
                Direction::Down,
                Direction::Down,
                Direction::Down,
            ],
        )
    }

    #[test]
    fn fig1_renders_like_the_paper() {
        assert_eq!(
            fig1_path().to_string(),
            "SymbolRef ↑ UnaryPrefix! ↑ While ↓ If ↓ Assign= ↓ SymbolRef"
        );
    }

    #[test]
    fn length_counts_edges() {
        assert_eq!(fig1_path().len(), 5);
    }

    #[test]
    fn top_is_the_turning_point() {
        let p = fig1_path();
        assert_eq!(p.top_index(), 2);
        assert_eq!(p.top_kind(), k("While"));
    }

    #[test]
    fn top_of_pure_up_path_is_last() {
        let p = AstPath::new(
            vec![k("SymbolRef"), k("Assign="), k("If")],
            vec![Direction::Up, Direction::Up],
        );
        assert_eq!(p.top_kind(), k("If"));
    }

    #[test]
    fn top_of_single_node_path_is_itself() {
        let p = AstPath::new(vec![k("SymbolRef")], vec![]);
        assert!(p.is_empty());
        assert_eq!(p.top_kind(), k("SymbolRef"));
    }

    #[test]
    fn reversed_flips_direction_and_order() {
        let p = fig1_path();
        let r = p.reversed();
        assert_eq!(
            r.to_string(),
            "SymbolRef ↑ Assign= ↑ If ↑ While ↓ UnaryPrefix! ↓ SymbolRef"
        );
        assert_eq!(r.reversed(), p);
    }

    #[test]
    #[should_panic(expected = "k+1 nodes")]
    fn mismatched_lengths_panic() {
        let _ = AstPath::new(vec![k("A")], vec![Direction::Up]);
    }
}
