//! Program elements: grouping terminal occurrences by identity.
//!
//! The paper represents a *program element* (e.g. the variable `d`) "as
//! the set of paths that its occurrences participate in". This module
//! provides the occurrence grouping; the learning layers decide which
//! elements are unknown (to be predicted) and which are given.

use pigeon_ast::{Ast, NodeId, Symbol};
use std::collections::HashMap;

/// The occurrences of each distinct terminal value in `ast`, keyed by
/// value and ordered by first occurrence.
///
/// ```
/// use pigeon_ast::AstBuilder;
/// use pigeon_core::element_occurrences;
///
/// let mut b = AstBuilder::new("Toplevel");
/// b.token("SymbolRef", "d");
/// b.token("SymbolRef", "x");
/// b.token("SymbolRef", "d");
/// let ast = b.finish();
///
/// let occ = element_occurrences(&ast);
/// assert_eq!(occ.len(), 2);
/// assert_eq!(occ[0].0.as_str(), "d");
/// assert_eq!(occ[0].1.len(), 2);
/// ```
pub fn element_occurrences(ast: &Ast) -> Vec<(Symbol, Vec<NodeId>)> {
    let mut index: HashMap<Symbol, usize> = HashMap::new();
    let mut groups: Vec<(Symbol, Vec<NodeId>)> = Vec::new();
    for &leaf in ast.leaves() {
        let value = ast.value(leaf).expect("leaves carry values");
        match index.get(&value) {
            Some(&i) => groups[i].1.push(leaf),
            None => {
                index.insert(value, groups.len());
                groups.push((value, vec![leaf]));
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use pigeon_ast::AstBuilder;

    #[test]
    fn groups_preserve_first_occurrence_order() {
        let mut b = AstBuilder::new("Toplevel");
        for v in ["b", "a", "b", "c", "a", "b"] {
            b.token("SymbolRef", v);
        }
        let ast = b.finish();
        let occ = element_occurrences(&ast);
        let names: Vec<_> = occ.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(names, ["b", "a", "c"]);
        let counts: Vec<_> = occ.iter().map(|(_, o)| o.len()).collect();
        assert_eq!(counts, [3, 2, 1]);
    }

    #[test]
    fn empty_tree_has_no_elements() {
        let ast = AstBuilder::new("Toplevel").finish();
        assert!(element_occurrences(&ast).is_empty());
    }
}
