//! AST paths, path-contexts and abstractions: the path-based
//! representation of *A General Path-Based Representation for Predicting
//! Program Properties* (Alon et al., PLDI 2018).
//!
//! This crate is the paper's primary contribution. Given an AST built by
//! any `pigeon-*` frontend, it extracts the **path-contexts**
//! `⟨x_s, p, x_f⟩` that represent each program element, applies the
//! **abstraction functions** of §5.6, enforces the `max_length` /
//! `max_width` hyper-parameters of §4.2, and supports the occurrence
//! **downsampling** of §5.5. The output feeds either learner unchanged —
//! the CRF in `pigeon-crf` or the SGNS embeddings in `pigeon-word2vec`.
//!
//! # Quickstart
//!
//! Extract the headline path of the paper's Fig. 1:
//!
//! ```
//! use pigeon_ast::AstBuilder;
//! use pigeon_core::{extract, ExtractionConfig};
//!
//! // while (!d) { if (someCondition()) { d = true; } }
//! let mut b = AstBuilder::new("Toplevel");
//! b.start_node("While");
//! b.start_node("UnaryPrefix!");
//! b.token("SymbolRef", "d");
//! b.finish_node();
//! b.start_node("If");
//! b.start_node("Call");
//! b.token("SymbolRef", "someCondition");
//! b.finish_node();
//! b.start_node("Assign=");
//! b.token("SymbolRef", "d");
//! b.token("True", "true");
//! b.finish_node();
//! b.finish_node();
//! b.finish_node();
//! let ast = b.finish();
//!
//! let contexts = extract(&ast, &ExtractionConfig::default());
//! let d_to_d = contexts
//!     .iter()
//!     .find(|c| c.start.as_str() == "d" && c.end.as_str() == "d")
//!     .expect("the two occurrences of d are connected");
//! assert_eq!(
//!     d_to_d.path.to_string(),
//!     "SymbolRef ↑ UnaryPrefix! ↑ While ↓ If ↓ Assign= ↓ SymbolRef",
//! );
//! ```

mod abstraction;
mod context;
mod element;
mod extract;
mod fingerprint;
mod nwise;
mod parallel;
mod path;
mod sampling;
mod vocab;

pub use abstraction::{AbstractPath, Abstraction, PathElem};
pub use context::{FlowEdge, FlowKind, PathContext, PathEnd};
pub use element::element_occurrences;
pub use extract::{
    contexts_to_node, extract, flow_contexts, leaf_pair_contexts, path_between, semi_path_contexts,
    ExtractionConfig, DATAFLOW_CONTEXTS_TOTAL,
};
pub use fingerprint::{fnv64, normalized_fingerprint, Fnv64};
pub use nwise::{triple_contexts, NWiseContext};
pub use parallel::{effective_jobs, parallel_map_indexed};
pub use path::{AstPath, Direction};
pub use sampling::{derive_seed, downsample, DOWNSAMPLE_SEED};
pub use vocab::{Interner, PathId, PathVocab};
