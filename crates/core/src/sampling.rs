//! Downsampling of path-context occurrences (§5.5, Fig. 11).
//!
//! After extraction, each *occurrence* of a path-context is kept with
//! probability `p` (and dropped with probability `1 − p`). The paper shows
//! this trades training time for accuracy very favourably: `p = 0.8` gave
//! identical accuracy at ~25% less training time, and even `p = 0.2` still
//! beat the hand-crafted baseline.

use rand::Rng;

/// Base seed for per-document downsampling streams (see [`derive_seed`]).
pub const DOWNSAMPLE_SEED: u64 = 0x9160_704E;

/// Derives an independent per-item seed from a base seed and an item
/// index (SplitMix64-style finalizer). Sharded workers use this to
/// reproduce the exact per-document RNG stream a single-process run
/// would use, regardless of which worker handles which document.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Keeps each element of `items` independently with probability
/// `keep_prob`, preserving relative order of survivors.
///
/// # Panics
///
/// Panics unless `0.0 <= keep_prob <= 1.0`.
pub fn downsample<T, R: Rng>(items: Vec<T>, keep_prob: f64, rng: &mut R) -> Vec<T> {
    assert!(
        (0.0..=1.0).contains(&keep_prob),
        "keep probability must be in [0, 1], got {keep_prob}"
    );
    if keep_prob >= 1.0 {
        return items;
    }
    items
        .into_iter()
        .filter(|_| rng.gen::<f64>() < keep_prob)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn p_one_keeps_everything() {
        let mut rng = SmallRng::seed_from_u64(1);
        let v: Vec<u32> = (0..100).collect();
        assert_eq!(downsample(v.clone(), 1.0, &mut rng), v);
    }

    #[test]
    fn p_zero_keeps_nothing() {
        let mut rng = SmallRng::seed_from_u64(1);
        let v: Vec<u32> = (0..100).collect();
        assert!(downsample(v, 0.0, &mut rng).is_empty());
    }

    #[test]
    fn survivor_count_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(42);
        let v: Vec<u32> = (0..10_000).collect();
        let kept = downsample(v, 0.8, &mut rng).len();
        assert!(
            (7_600..=8_400).contains(&kept),
            "kept {kept} of 10000 at p=0.8"
        );
    }

    #[test]
    fn order_is_preserved() {
        let mut rng = SmallRng::seed_from_u64(7);
        let kept = downsample((0..1000).collect::<Vec<u32>>(), 0.5, &mut rng);
        assert!(kept.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sampling_is_deterministic_under_a_seed() {
        let a = downsample(
            (0..1000).collect::<Vec<u32>>(),
            0.5,
            &mut SmallRng::seed_from_u64(9),
        );
        let b = downsample(
            (0..1000).collect::<Vec<u32>>(),
            0.5,
            &mut SmallRng::seed_from_u64(9),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "keep probability")]
    fn out_of_range_p_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = downsample(vec![1], 1.5, &mut rng);
    }
}
