//! Property tests for path extraction: every extracted path is a valid
//! walk of the tree it came from and respects the configured limits.

use pigeon_ast::{Ast, AstBuilder};
use pigeon_core::{
    extract, leaf_pair_contexts, path_between, Abstraction, Direction, ExtractionConfig, PathVocab,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Start(u8),
    Token(u8, u8),
    Finish,
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..5).prop_map(Op::Start),
            (0u8..5, 0u8..8).prop_map(|(k, v)| Op::Token(k, v)),
            Just(Op::Finish),
        ],
        0..80,
    )
}

fn build(ops: &[Op]) -> Ast {
    let mut b = AstBuilder::new("Root");
    let mut depth = 0usize;
    for op in ops {
        match op {
            Op::Start(k) => {
                b.start_node(format!("Nt{k}").as_str());
                depth += 1;
            }
            Op::Token(k, v) => {
                b.token(format!("T{k}").as_str(), format!("v{v}").as_str());
            }
            Op::Finish => {
                if depth > 0 {
                    b.finish_node();
                    depth -= 1;
                }
            }
        }
    }
    for _ in 0..depth {
        b.finish_node();
    }
    b.finish()
}

proptest! {
    /// Walking the tree according to an extracted path's directions from
    /// its start node lands exactly on its end node, visiting the recorded
    /// kinds: the path is faithful to the tree.
    #[test]
    fn extracted_paths_are_valid_walks(ops in ops_strategy()) {
        let ast = build(&ops);
        let cfg = ExtractionConfig::with_limits(10, 10).semi_paths(true);
        for ctx in extract(&ast, &cfg) {
            let kinds = ctx.path.kinds();
            let dirs = ctx.path.directions();
            let mut cur = ctx.start_node;
            prop_assert_eq!(ast.kind(cur), kinds[0]);
            for (i, &d) in dirs.iter().enumerate() {
                cur = match d {
                    Direction::Up => ast.parent(cur).expect("walk stays in tree"),
                    Direction::Down => {
                        // The next node is some child with the recorded kind;
                        // find the one that continues the path.
                        *ast.children(cur)
                            .iter()
                            .find(|&&c| {
                                ast.kind(c) == kinds[i + 1]
                                    && reaches(&ast, c, ctx.end_node)
                            })
                            .expect("down step exists")
                    }
                };
                prop_assert_eq!(ast.kind(cur), kinds[i + 1]);
            }
            prop_assert_eq!(cur, ctx.end_node);
        }
    }

    /// Length and width limits are respected, and tightening them only
    /// shrinks the extracted set.
    #[test]
    fn limits_are_monotone(ops in ops_strategy(), len in 1usize..8, width in 0usize..5) {
        let ast = build(&ops);
        let loose = leaf_pair_contexts(&ast, &ExtractionConfig::with_limits(len + 2, width + 2));
        let tight = leaf_pair_contexts(&ast, &ExtractionConfig::with_limits(len, width));
        prop_assert!(tight.len() <= loose.len());
        for c in &tight {
            prop_assert!(c.path.len() <= len);
        }
        for c in &tight {
            prop_assert!(loose.contains(c));
        }
    }

    /// Paths always climb then descend (single turning point).
    #[test]
    fn paths_are_up_star_down_star(ops in ops_strategy()) {
        let ast = build(&ops);
        for ctx in leaf_pair_contexts(&ast, &ExtractionConfig::with_limits(12, 12)) {
            let dirs = ctx.path.directions();
            let first_down = dirs.iter().position(|&d| d == Direction::Down);
            if let Some(i) = first_down {
                prop_assert!(dirs[i..].iter().all(|&d| d == Direction::Down));
            }
        }
    }

    /// path_between is symmetric up to reversal.
    #[test]
    fn path_between_reverses(ops in ops_strategy()) {
        let ast = build(&ops);
        let leaves = ast.leaves();
        if leaves.len() >= 2 {
            let (ab, w1) = path_between(&ast, leaves[0], leaves[leaves.len() - 1]);
            let (ba, w2) = path_between(&ast, leaves[leaves.len() - 1], leaves[0]);
            prop_assert_eq!(ab.reversed(), ba);
            prop_assert_eq!(w1, w2);
        }
    }

    /// The single-pass merge extractor agrees with the naive reference:
    /// calling [`path_between`] on every leaf pair and filtering by the
    /// limits afterwards. Same contexts, same order.
    #[test]
    fn merge_extractor_matches_pairwise_reference(
        ops in ops_strategy(),
        len in 0usize..9,
        width in 0usize..5,
    ) {
        let ast = build(&ops);
        let cfg = ExtractionConfig::with_limits(len, width);
        let leaves = ast.leaves();
        let mut reference = Vec::new();
        for (i, &a) in leaves.iter().enumerate() {
            for &b in &leaves[i + 1..] {
                let (path, w) = path_between(&ast, a, b);
                if path.len() <= cfg.max_length && w <= cfg.max_width {
                    reference.push((a, path, b));
                }
            }
        }
        let merged = leaf_pair_contexts(&ast, &cfg);
        prop_assert_eq!(merged.len(), reference.len());
        for (ctx, (a, path, b)) in merged.iter().zip(&reference) {
            prop_assert_eq!(ctx.start_node, *a);
            prop_assert_eq!(ctx.end_node, *b);
            prop_assert_eq!(&ctx.path, path);
        }
    }

    /// Coarsening the abstraction never increases the number of distinct
    /// path ids over the same extraction.
    #[test]
    fn abstraction_chain_is_monotone_on_vocab_size(ops in ops_strategy()) {
        let ast = build(&ops);
        let ctxs = leaf_pair_contexts(&ast, &ExtractionConfig::with_limits(10, 10));
        let chain = [
            Abstraction::Full,
            Abstraction::NoArrows,
            Abstraction::ForgetOrder,
            Abstraction::NoPath,
        ];
        let mut last = usize::MAX;
        for a in chain {
            let mut v = PathVocab::new(a);
            for c in &ctxs {
                v.intern(&c.path);
            }
            prop_assert!(v.len() <= last);
            last = v.len();
        }
    }
}

fn reaches(ast: &Ast, from: pigeon_ast::NodeId, target: pigeon_ast::NodeId) -> bool {
    if from == target {
        return true;
    }
    ast.children(from).iter().any(|&c| reaches(ast, c, target))
}
