//! Golden tests: realistic JavaScript programs parse to stable shapes.

use pigeon_ast::{pretty, Symbol};

#[test]
fn paper_fig1a_full_pretty() {
    let ast = pigeon_js::parse("while (!d) { if (someCondition()) { d = true; } }").unwrap();
    assert_eq!(
        pretty(&ast),
        "Toplevel\n\
         \x20 While\n\
         \x20   UnaryPrefix!\n\
         \x20     SymbolRef \"d\"\n\
         \x20   If\n\
         \x20     Call\n\
         \x20       SymbolRef \"someCondition\"\n\
         \x20     Assign=\n\
         \x20       SymbolRef \"d\"\n\
         \x20       True \"true\"\n"
    );
}

#[test]
fn event_handler_module() {
    let src = r#"
var registry = {};

function on(name, handler) {
  var list = registry[name];
  if (!list) {
    list = [];
    registry[name] = list;
  }
  list.push(handler);
}

function emit(name, payload) {
  var handlers = registry[name];
  if (!handlers) {
    return 0;
  }
  for (var i = 0; i < handlers.length; i++) {
    try {
      handlers[i](payload);
    } catch (err) {
      console.error('handler failed: ' + err);
    }
  }
  return handlers.length;
}
"#;
    let ast = pigeon_js::parse(src).unwrap();
    ast.check_invariants().unwrap();
    // Structural spot-checks instead of a full dump.
    assert_eq!(ast.leaves_with_value(Symbol::new("registry")).len(), 4);
    assert_eq!(ast.leaves_with_value(Symbol::new("handlers")).len(), 5);
    let kinds: Vec<&str> = ast
        .preorder()
        .map(|n| ast.kind(n).as_str())
        .filter(|k| *k == "Defun")
        .collect();
    assert_eq!(kinds.len(), 2);
}

#[test]
fn promise_style_chains() {
    let src = "fetchUser(id).then(function (user) { return user.profile; })\
               .then(render, function (err) { log(err); });";
    let ast = pigeon_js::parse(src).unwrap();
    let text = pigeon_ast::sexp(&ast);
    assert!(text.contains("(Dot (Call (Dot (Call (SymbolRef fetchUser)"));
    assert!(text.contains("(Function (SymbolFunarg user)"));
}

#[test]
fn mixed_declaration_kinds() {
    let src = "const MAX = 10; let current = 0; var done = false;";
    let text = pigeon_ast::sexp(&pigeon_js::parse(src).unwrap());
    assert!(text.contains("(Const (VarDef (SymbolVar MAX) (Number 10)))"));
    assert!(text.contains("(Let (VarDef (SymbolVar current) (Number 0)))"));
    assert!(text.contains("(Var (VarDef (SymbolVar done) (False false)))"));
}

#[test]
fn nested_ternaries_and_sequences() {
    let src = "state = ready ? running ? 'both' : 'ready' : 'idle';";
    let text = pigeon_ast::sexp(&pigeon_js::parse(src).unwrap());
    assert!(text.contains(
        "(Conditional (SymbolRef ready) (Conditional (SymbolRef running) (String both) \
         (String ready)) (String idle))"
    ));
}

#[test]
fn else_branches_are_marked() {
    let src = "if (a) { f(); } else { g(); h(); }";
    let text = pigeon_ast::sexp(&pigeon_js::parse(src).unwrap());
    assert!(text.contains(
        "(If (SymbolRef a) (Call (SymbolRef f)) (Else (Call (SymbolRef g)) (Call \
         (SymbolRef h))))"
    ));
}

#[test]
fn deeply_nested_loops_keep_invariants() {
    let mut src = String::from("function f(m) {\n");
    for depth in 0..12 {
        src.push_str(&format!(
            "for (var i{depth} = 0; i{depth} < m; i{depth}++) {{\n"
        ));
    }
    src.push_str("touch();\n");
    for _ in 0..12 {
        src.push('}');
    }
    src.push_str("\n}\n");
    let ast = pigeon_js::parse(&src).unwrap();
    ast.check_invariants().unwrap();
    let max_depth = ast.preorder().map(|n| ast.depth(n)).max().unwrap();
    assert!(max_depth >= 13, "nesting depth preserved: {max_depth}");
}
