//! Robustness: the frontend never panics, it returns `Err` on garbage.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_never_panics_on_printable_ascii(src in "[ -~\\n\\t]{0,200}") {
        let _ = pigeon_js::parse(&src);
    }

    #[test]
    fn parse_never_panics_on_token_soup(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("var".to_owned()), Just("function".to_owned()),
                Just("if".to_owned()), Just("while".to_owned()),
                Just("(".to_owned()), Just(")".to_owned()),
                Just("{".to_owned()), Just("}".to_owned()),
                Just("=".to_owned()), Just(";".to_owned()),
                Just("=>".to_owned()), Just("++".to_owned()),
                "[a-z]{1,4}", "[0-9]{1,3}",
            ],
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let _ = pigeon_js::parse(&src);
    }

    #[test]
    fn valid_programs_round_trip_through_reparse(
        names in prop::collection::vec("vx[a-z]{0,4}", 1..5)
    ) {
        // Build a syntactically valid program from generated names; it
        // must parse, and the leaf values must contain every name.
        let body: String = names
            .iter()
            .map(|n| format!("var {n} = f({n}0);\n"))
            .collect();
        let ast = pigeon_js::parse(&body).unwrap();
        for n in &names {
            prop_assert!(ast
                .leaves()
                .iter()
                .any(|&l| ast.value(l).unwrap().as_str() == n));
        }
    }
}
