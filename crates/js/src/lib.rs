//! JavaScript-subset frontend producing PIGEON ASTs.
//!
//! The node-kind vocabulary follows UglifyJS — the parser the paper's
//! PIGEON tool used for JavaScript — so the paths this frontend yields
//! render exactly like the paper's examples:
//! `SymbolRef ↑ UnaryPrefix! ↑ While ↓ If ↓ Assign= ↓ SymbolRef`.
//!
//! # Supported subset
//!
//! Declarations (`var`/`let`/`const`, functions), the full statement suite
//! the corpus exercises (`if`/`else`, `while`, `do`, the three `for`
//! forms, `switch`, `try`/`catch`/`finally`, `return`, `break`,
//! `continue`, `throw`, blocks, expression statements) and an expression
//! grammar with assignment (simple and compound), conditional, the
//! logical/equality/relational/additive/multiplicative tiers, prefix and
//! postfix unaries, calls, `new`, named and computed member access, array
//! and object literals, function expressions and arrow functions.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), pigeon_js::ParseError> {
//! let ast = pigeon_js::parse("while (!d) { d = true; }")?;
//! assert_eq!(
//!     pigeon_ast::sexp(&ast),
//!     "(Toplevel (While (UnaryPrefix! (SymbolRef d)) \
//!      (Assign= (SymbolRef d) (True true))))"
//! );
//! # Ok(())
//! # }
//! ```

mod lexer;
mod parser;

pub use lexer::{is_keyword, tokenize, LexError, Token, TokenKind, KEYWORDS};
pub use parser::{parse, ParseError};
