//! Tokenizer for the JavaScript subset.

use std::fmt;

/// The lexical category of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are distinguished by text).
    Ident,
    /// A numeric literal.
    Number,
    /// A string literal (text excludes the quotes).
    String,
    /// A punctuation or operator token.
    Punct,
    /// End of input.
    Eof,
}

/// One lexical token with its text and byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical category.
    pub kind: TokenKind,
    /// The token's source text (for strings: the unquoted contents).
    pub text: String,
    /// Byte offset of the first character in the source.
    pub offset: u32,
}

/// An error produced while tokenizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset the error occurred at.
    pub offset: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// JavaScript keywords recognised by the parser.
pub const KEYWORDS: &[&str] = &[
    "var",
    "let",
    "const",
    "function",
    "return",
    "if",
    "else",
    "while",
    "do",
    "for",
    "break",
    "continue",
    "new",
    "typeof",
    "delete",
    "in",
    "of",
    "null",
    "true",
    "false",
    "this",
    "instanceof",
    "switch",
    "case",
    "default",
    "try",
    "catch",
    "finally",
    "throw",
];

/// Whether `text` is a reserved word.
pub fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

const PUNCT3: &[&str] = &["===", "!==", "**=", "..."];
const PUNCT2: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "=>", "**",
];
const PUNCT1: &[char] = &[
    '(', ')', '{', '}', '[', ']', ';', ',', '.', '=', '<', '>', '+', '-', '*', '/', '%', '!', '?',
    ':', '&', '|', '^', '~',
];

/// Tokenizes `source`, skipping whitespace and comments. The final token
/// is always [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns [`LexError`] on an unterminated string or comment, or on a
/// character outside the subset's alphabet.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            match bytes[i + 1] as char {
                '/' => {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                    continue;
                }
                '*' => {
                    let start = i;
                    i += 2;
                    loop {
                        if i + 1 >= bytes.len() {
                            return Err(LexError {
                                message: "unterminated block comment".into(),
                                offset: start as u32,
                            });
                        }
                        if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                            i += 2;
                            break;
                        }
                        i += 1;
                    }
                    continue;
                }
                _ => {}
            }
        }
        let offset = i as u32;
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || bytes[i] == b'$')
            {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: source[start..i].to_owned(),
                offset,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'.')
            {
                // Stop a trailing `.` that begins a method call: `1.toFixed`
                // is not in the subset, so a simple scan suffices.
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: source[start..i].to_owned(),
                offset,
            });
            continue;
        }
        if c == '"' || c == '\'' {
            let quote = c;
            let start = i;
            i += 1;
            let mut text = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        offset: start as u32,
                    });
                }
                let ch = bytes[i] as char;
                if ch == quote {
                    i += 1;
                    break;
                }
                if ch == '\\' && i + 1 < bytes.len() {
                    let esc = bytes[i + 1] as char;
                    text.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    });
                    i += 2;
                    continue;
                }
                text.push(ch);
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::String,
                text,
                offset,
            });
            continue;
        }
        // Punctuation: longest match first.
        let rest = &source[i..];
        if let Some(p) = PUNCT3.iter().find(|p| rest.starts_with(**p)) {
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: (*p).to_owned(),
                offset,
            });
            i += p.len();
            continue;
        }
        if let Some(p) = PUNCT2.iter().find(|p| rest.starts_with(**p)) {
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: (*p).to_owned(),
                offset,
            });
            i += p.len();
            continue;
        }
        if PUNCT1.contains(&c) {
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                offset,
            });
            i += 1;
            continue;
        }
        return Err(LexError {
            message: format!("unexpected character {c:?}"),
            offset,
        });
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        text: String::new(),
        offset: bytes.len() as u32,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .filter(|t| t.kind != TokenKind::Eof)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_numbers_strings() {
        assert_eq!(texts("var x = 42;"), ["var", "x", "=", "42", ";"]);
        assert_eq!(texts("s = 'hi'"), ["s", "=", "hi"]);
        assert_eq!(texts("s = \"a\\nb\""), ["s", "=", "a\nb"]);
    }

    #[test]
    fn multi_char_punct_wins() {
        assert_eq!(texts("a === b"), ["a", "===", "b"]);
        assert_eq!(texts("a == b"), ["a", "==", "b"]);
        assert_eq!(texts("i++ + 1"), ["i", "++", "+", "1"]);
        assert_eq!(texts("f => g"), ["f", "=>", "g"]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(texts("a // line\n b"), ["a", "b"]);
        assert_eq!(texts("a /* block \n more */ b"), ["a", "b"]);
    }

    #[test]
    fn dollar_and_underscore_idents() {
        assert_eq!(texts("$el _x"), ["$el", "_x"]);
    }

    #[test]
    fn offsets_point_into_source() {
        let toks = tokenize("ab cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }

    #[test]
    fn unterminated_string_errors() {
        let err = tokenize("'abc").unwrap_err();
        assert!(err.message.contains("unterminated string"));
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn unterminated_comment_errors() {
        let err = tokenize("/* abc").unwrap_err();
        assert!(err.message.contains("unterminated block comment"));
    }

    #[test]
    fn unknown_character_errors() {
        let err = tokenize("a # b").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn keywords_are_recognised() {
        assert!(is_keyword("while"));
        assert!(!is_keyword("whileish"));
    }

    #[test]
    fn eof_is_last() {
        let toks = tokenize("x").unwrap();
        assert_eq!(toks.last().unwrap().kind, TokenKind::Eof);
    }
}
