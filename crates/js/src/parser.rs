//! Recursive-descent parser for the JavaScript subset.
//!
//! Node kinds follow UglifyJS (the parser the paper used for JavaScript):
//! `SymbolRef` for identifier references, `SymbolVar` for declared names,
//! `Assign=` / `Binary==` / `UnaryPrefix!` with the operator folded into
//! the kind, `Sub` for computed member access, `Dot` for named member
//! access, and so on. See the crate docs for the full kind inventory.

use crate::lexer::{is_keyword, tokenize, LexError, Token, TokenKind};
use pigeon_ast::{Ast, TreeNode};
use std::fmt;

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset the error occurred at.
    pub offset: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parses a JavaScript compilation unit into a PIGEON AST rooted at
/// `Toplevel`.
///
/// # Errors
///
/// Returns [`ParseError`] on any input outside the supported subset.
///
/// ```
/// # fn main() -> Result<(), pigeon_js::ParseError> {
/// let ast = pigeon_js::parse("var done = false;")?;
/// assert_eq!(pigeon_ast::sexp(&ast),
///     "(Toplevel (Var (VarDef (SymbolVar done) (False false))))");
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<Ast, ParseError> {
    let tokens = tokenize(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_eof() {
        stmts.push(p.statement()?);
    }
    Ok(TreeNode::inner("Toplevel", stmts).into_ast())
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

type PResult = Result<TreeNode, ParseError>;

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_at(&self, n: usize) -> &Token {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i]
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn at(&self, text: &str) -> bool {
        let t = self.peek();
        t.kind != TokenKind::Eof && t.kind != TokenKind::String && t.text == text
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, text: &str) -> bool {
        if self.at(text) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, text: &str) -> Result<Token, ParseError> {
        if self.at(text) {
            Ok(self.bump())
        } else {
            Err(self.error(&format!("expected `{text}`, found `{}`", self.peek().text)))
        }
    }

    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.peek().offset,
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let t = self.peek();
        if t.kind == TokenKind::Ident && !is_keyword(&t.text) {
            Ok(self.bump().text)
        } else {
            Err(self.error(&format!("expected identifier, found `{}`", t.text)))
        }
    }

    // ---- statements -----------------------------------------------------

    /// Splices a parsed body into `children`: a braced block's statements
    /// are appended directly, matching the UglifyJS AST the paper draws
    /// (Fig. 1b shows `While ↓ If` with no Block node in between).
    fn splice_body(body: TreeNode, children: &mut Vec<TreeNode>) {
        if body.kind == pigeon_ast::Kind::new("Block") && body.value.is_none() {
            children.extend(body.children);
        } else {
            children.push(body);
        }
    }

    fn statement(&mut self) -> PResult {
        if self.at("var") || self.at("let") || self.at("const") {
            let s = self.var_statement()?;
            self.eat(";");
            return Ok(s);
        }
        if self.at("function") {
            return self.function(true);
        }
        if self.at("if") {
            return self.if_statement();
        }
        if self.at("while") {
            self.bump();
            self.expect("(")?;
            let cond = self.expression()?;
            self.expect(")")?;
            let body = self.statement()?;
            let mut children = vec![cond];
            Self::splice_body(body, &mut children);
            return Ok(TreeNode::inner("While", children));
        }
        if self.at("do") {
            self.bump();
            let body = self.statement()?;
            self.expect("while")?;
            self.expect("(")?;
            let cond = self.expression()?;
            self.expect(")")?;
            self.eat(";");
            return Ok(TreeNode::inner("Do", vec![body, cond]));
        }
        if self.at("for") {
            return self.for_statement();
        }
        if self.at("return") {
            self.bump();
            let mut children = Vec::new();
            if !self.at(";") && !self.at("}") && !self.at_eof() {
                children.push(self.expression()?);
            }
            self.eat(";");
            return Ok(TreeNode::inner("Return", children));
        }
        if self.at("break") {
            self.bump();
            self.eat(";");
            return Ok(TreeNode::nullary("Break"));
        }
        if self.at("continue") {
            self.bump();
            self.eat(";");
            return Ok(TreeNode::nullary("Continue"));
        }
        if self.at("throw") {
            self.bump();
            let e = self.expression()?;
            self.eat(";");
            return Ok(TreeNode::inner("Throw", vec![e]));
        }
        if self.at("switch") {
            return self.switch_statement();
        }
        if self.at("try") {
            return self.try_statement();
        }
        if self.at("{") {
            return self.block();
        }
        // Expression statement: the expression node itself is the
        // statement, as in the paper's UglifyJS-style figures.
        let e = self.expression()?;
        self.eat(";");
        Ok(e)
    }

    fn var_statement(&mut self) -> PResult {
        let kw = self.bump().text;
        let kind = match kw.as_str() {
            "var" => "Var",
            "let" => "Let",
            _ => "Const",
        };
        let mut defs = Vec::new();
        loop {
            let name = self.ident()?;
            let mut def = vec![TreeNode::leaf("SymbolVar", name.as_str())];
            if self.eat("=") {
                def.push(self.assignment()?);
            }
            defs.push(TreeNode::inner("VarDef", def));
            if !self.eat(",") {
                break;
            }
        }
        Ok(TreeNode::inner(kind, defs))
    }

    fn function(&mut self, is_decl: bool) -> PResult {
        self.expect("function")?;
        let mut children = Vec::new();
        let kind = if is_decl { "Defun" } else { "Function" };
        if self.peek().kind == TokenKind::Ident && !is_keyword(&self.peek().text) {
            let name = self.ident()?;
            let name_kind = if is_decl {
                "SymbolDefun"
            } else {
                "SymbolLambda"
            };
            children.push(TreeNode::leaf(name_kind, name.as_str()));
        } else if is_decl {
            return Err(self.error("function declaration requires a name"));
        }
        self.expect("(")?;
        while !self.at(")") {
            let arg = self.ident()?;
            children.push(TreeNode::leaf("SymbolFunarg", arg.as_str()));
            if !self.eat(",") {
                break;
            }
        }
        self.expect(")")?;
        self.expect("{")?;
        while !self.at("}") {
            children.push(self.statement()?);
        }
        self.expect("}")?;
        Ok(TreeNode::inner(kind, children))
    }

    fn if_statement(&mut self) -> PResult {
        self.expect("if")?;
        self.expect("(")?;
        let cond = self.expression()?;
        self.expect(")")?;
        let then = self.statement()?;
        let mut children = vec![cond];
        Self::splice_body(then, &mut children);
        if self.eat("else") {
            let mut alt = Vec::new();
            Self::splice_body(self.statement()?, &mut alt);
            children.push(TreeNode::inner("Else", alt));
        }
        Ok(TreeNode::inner("If", children))
    }

    fn for_statement(&mut self) -> PResult {
        self.expect("for")?;
        self.expect("(")?;
        // Distinguish for-in / for-of from the classic three-clause form.
        let decl_kw = self.at("var") || self.at("let") || self.at("const");
        let in_or_of = {
            let step = if decl_kw { 2 } else { 1 };
            let t = self.peek_at(step);
            t.kind == TokenKind::Ident && (t.text == "in" || t.text == "of")
        };
        if in_or_of {
            let binding = if decl_kw {
                self.bump();
                TreeNode::inner(
                    "VarDef",
                    vec![TreeNode::leaf("SymbolVar", self.ident()?.as_str())],
                )
            } else {
                TreeNode::leaf("SymbolRef", self.ident()?.as_str())
            };
            let kind = if self.eat("in") {
                "ForIn"
            } else {
                self.expect("of")?;
                "ForOf"
            };
            let object = self.expression()?;
            self.expect(")")?;
            let body = self.statement()?;
            let mut children = vec![binding, object];
            Self::splice_body(body, &mut children);
            return Ok(TreeNode::inner(kind, children));
        }
        let mut children = Vec::new();
        if !self.at(";") {
            if decl_kw {
                children.push(self.var_statement()?);
            } else {
                children.push(self.expression()?);
            }
        }
        self.expect(";")?;
        if !self.at(";") {
            children.push(self.expression()?);
        }
        self.expect(";")?;
        if !self.at(")") {
            children.push(self.expression()?);
        }
        self.expect(")")?;
        let body = self.statement()?;
        Self::splice_body(body, &mut children);
        Ok(TreeNode::inner("For", children))
    }

    fn switch_statement(&mut self) -> PResult {
        self.expect("switch")?;
        self.expect("(")?;
        let scrutinee = self.expression()?;
        self.expect(")")?;
        self.expect("{")?;
        let mut children = vec![scrutinee];
        while !self.at("}") {
            if self.eat("case") {
                let value = self.expression()?;
                self.expect(":")?;
                let mut body = vec![value];
                while !self.at("case") && !self.at("default") && !self.at("}") {
                    body.push(self.statement()?);
                }
                children.push(TreeNode::inner("Case", body));
            } else {
                self.expect("default")?;
                self.expect(":")?;
                let mut body = Vec::new();
                while !self.at("case") && !self.at("default") && !self.at("}") {
                    body.push(self.statement()?);
                }
                children.push(TreeNode::inner("Default", body));
            }
        }
        self.expect("}")?;
        Ok(TreeNode::inner("Switch", children))
    }

    fn try_statement(&mut self) -> PResult {
        self.expect("try")?;
        let mut children = vec![self.block()?];
        if self.eat("catch") {
            let mut catch = Vec::new();
            if self.eat("(") {
                catch.push(TreeNode::leaf("SymbolCatch", self.ident()?.as_str()));
                self.expect(")")?;
            }
            catch.push(self.block()?);
            children.push(TreeNode::inner("Catch", catch));
        }
        if self.eat("finally") {
            children.push(TreeNode::inner("Finally", vec![self.block()?]));
        }
        if children.len() == 1 {
            return Err(self.error("try requires catch or finally"));
        }
        Ok(TreeNode::inner("Try", children))
    }

    fn block(&mut self) -> PResult {
        self.expect("{")?;
        let mut stmts = Vec::new();
        while !self.at("}") {
            stmts.push(self.statement()?);
        }
        self.expect("}")?;
        Ok(TreeNode::inner("Block", stmts))
    }

    // ---- expressions ----------------------------------------------------

    fn expression(&mut self) -> PResult {
        let mut e = self.assignment()?;
        // Comma operator: fold into a Seq node.
        if self.at(",") {
            let mut parts = vec![e];
            while self.eat(",") {
                parts.push(self.assignment()?);
            }
            e = TreeNode::inner("Seq", parts);
        }
        Ok(e)
    }

    fn assignment(&mut self) -> PResult {
        let lhs = self.conditional()?;
        for op in ["=", "+=", "-=", "*=", "/=", "%="] {
            if self.at(op) {
                self.bump();
                let rhs = self.assignment()?;
                return Ok(TreeNode::inner(
                    format!("Assign{op}").as_str(),
                    vec![lhs, rhs],
                ));
            }
        }
        Ok(lhs)
    }

    fn conditional(&mut self) -> PResult {
        let cond = self.binary(0)?;
        if self.eat("?") {
            let then = self.assignment()?;
            self.expect(":")?;
            let alt = self.assignment()?;
            return Ok(TreeNode::inner("Conditional", vec![cond, then, alt]));
        }
        Ok(cond)
    }

    /// Binary operator tiers, loosest first.
    const BINARY_TIERS: [&'static [&'static str]; 6] = [
        &["||"],
        &["&&"],
        &["==", "!=", "===", "!=="],
        &["<", ">", "<=", ">=", "in", "instanceof"],
        &["+", "-"],
        &["*", "/", "%"],
    ];

    fn binary(&mut self, tier: usize) -> PResult {
        if tier >= Self::BINARY_TIERS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(tier + 1)?;
        loop {
            let op = Self::BINARY_TIERS[tier]
                .iter()
                .find(|op| self.at(op))
                .copied();
            match op {
                Some(op) => {
                    self.bump();
                    let rhs = self.binary(tier + 1)?;
                    lhs = TreeNode::inner(format!("Binary{op}").as_str(), vec![lhs, rhs]);
                }
                None => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> PResult {
        for op in ["!", "-", "+", "~", "typeof", "delete", "++", "--"] {
            if self.at(op) {
                self.bump();
                let operand = self.unary()?;
                return Ok(TreeNode::inner(
                    format!("UnaryPrefix{op}").as_str(),
                    vec![operand],
                ));
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult {
        let mut e = self.call_member()?;
        for op in ["++", "--"] {
            if self.at(op) {
                self.bump();
                e = TreeNode::inner(format!("UnaryPostfix{op}").as_str(), vec![e]);
            }
        }
        Ok(e)
    }

    fn call_member(&mut self) -> PResult {
        let mut e = if self.at("new") {
            self.bump();
            let callee = self.primary()?;
            let mut children = vec![callee];
            if self.eat("(") {
                while !self.at(")") {
                    children.push(self.assignment()?);
                    if !self.eat(",") {
                        break;
                    }
                }
                self.expect(")")?;
            }
            TreeNode::inner("New", children)
        } else {
            self.primary()?
        };
        loop {
            if self.eat(".") {
                let prop = self.property_name()?;
                e = TreeNode::inner("Dot", vec![e, TreeNode::leaf("Property", prop.as_str())]);
            } else if self.eat("[") {
                let index = self.expression()?;
                self.expect("]")?;
                e = TreeNode::inner("Sub", vec![e, index]);
            } else if self.eat("(") {
                let mut children = vec![e];
                while !self.at(")") {
                    children.push(self.assignment()?);
                    if !self.eat(",") {
                        break;
                    }
                }
                self.expect(")")?;
                e = TreeNode::inner("Call", children);
            } else {
                return Ok(e);
            }
        }
    }

    fn property_name(&mut self) -> Result<String, ParseError> {
        let t = self.peek();
        if t.kind == TokenKind::Ident {
            // Property positions admit keywords (`x.in` is legal enough
            // for the subset).
            Ok(self.bump().text)
        } else {
            Err(self.error(&format!("expected property name, found `{}`", t.text)))
        }
    }

    /// Whether the parenthesis at the current position opens an arrow
    /// function's parameter list.
    fn paren_starts_arrow(&self) -> bool {
        debug_assert!(self.at("("));
        let mut depth = 0usize;
        let mut i = self.pos;
        loop {
            let t = &self.tokens[i];
            match t.kind {
                TokenKind::Eof => return false,
                TokenKind::Punct if t.text == "(" => depth += 1,
                TokenKind::Punct if t.text == ")" => {
                    depth -= 1;
                    if depth == 0 {
                        let next = &self.tokens[(i + 1).min(self.tokens.len() - 1)];
                        return next.kind == TokenKind::Punct && next.text == "=>";
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    fn arrow_body(&mut self, mut params: Vec<TreeNode>) -> PResult {
        self.expect("=>")?;
        if self.at("{") {
            params.push(self.block()?);
        } else {
            params.push(self.assignment()?);
        }
        Ok(TreeNode::inner("Arrow", params))
    }

    fn primary(&mut self) -> PResult {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Number => {
                self.bump();
                Ok(TreeNode::leaf("Number", t.text.as_str()))
            }
            TokenKind::String => {
                self.bump();
                Ok(TreeNode::leaf("String", t.text.as_str()))
            }
            TokenKind::Ident => match t.text.as_str() {
                "true" => {
                    self.bump();
                    Ok(TreeNode::leaf("True", "true"))
                }
                "false" => {
                    self.bump();
                    Ok(TreeNode::leaf("False", "false"))
                }
                "null" => {
                    self.bump();
                    Ok(TreeNode::leaf("Null", "null"))
                }
                "this" => {
                    self.bump();
                    Ok(TreeNode::leaf("This", "this"))
                }
                "function" => self.function(false),
                _ if is_keyword(&t.text) => {
                    Err(self.error(&format!("unexpected keyword `{}`", t.text)))
                }
                _ => {
                    // Single-parameter arrow: `x => body`.
                    if self.peek_at(1).text == "=>" && self.peek_at(1).kind == TokenKind::Punct {
                        let p = self.ident()?;
                        return self.arrow_body(vec![TreeNode::leaf("SymbolFunarg", p.as_str())]);
                    }
                    self.bump();
                    Ok(TreeNode::leaf("SymbolRef", t.text.as_str()))
                }
            },
            TokenKind::Punct => match t.text.as_str() {
                "(" => {
                    if self.paren_starts_arrow() {
                        self.bump();
                        let mut params = Vec::new();
                        while !self.at(")") {
                            let p = self.ident()?;
                            params.push(TreeNode::leaf("SymbolFunarg", p.as_str()));
                            if !self.eat(",") {
                                break;
                            }
                        }
                        self.expect(")")?;
                        return self.arrow_body(params);
                    }
                    self.bump();
                    let e = self.expression()?;
                    self.expect(")")?;
                    Ok(e)
                }
                "[" => {
                    self.bump();
                    let mut items = Vec::new();
                    while !self.at("]") {
                        items.push(self.assignment()?);
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.expect("]")?;
                    Ok(TreeNode::inner("Array", items))
                }
                "{" => {
                    self.bump();
                    let mut props = Vec::new();
                    while !self.at("}") {
                        let key = self.property_key()?;
                        self.expect(":")?;
                        let value = self.assignment()?;
                        props.push(TreeNode::inner(
                            "ObjectKeyVal",
                            vec![TreeNode::leaf("Key", key.as_str()), value],
                        ));
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.expect("}")?;
                    Ok(TreeNode::inner("Object", props))
                }
                _ => Err(self.error(&format!("unexpected token `{}`", t.text))),
            },
            TokenKind::Eof => Err(self.error("unexpected end of input")),
        }
    }

    fn property_key(&mut self) -> Result<String, ParseError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Ident | TokenKind::Number | TokenKind::String => {
                self.bump();
                Ok(t.text)
            }
            _ => Err(self.error(&format!("expected property key, found `{}`", t.text))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pigeon_ast::sexp;

    fn s(src: &str) -> String {
        sexp(&parse(src).unwrap())
    }

    #[test]
    fn example_4_5_statement() {
        // `var item = array[i];` — the paper's Fig. 4.
        assert_eq!(
            s("var item = array[i];"),
            "(Toplevel (Var (VarDef (SymbolVar item) (Sub (SymbolRef array) (SymbolRef i)))))"
        );
    }

    #[test]
    fn fig1_program_shape() {
        let src = "while (!d) { if (someCondition()) { d = true; } }";
        assert_eq!(
            s(src),
            "(Toplevel (While (UnaryPrefix! (SymbolRef d)) (If (Call (SymbolRef \
             someCondition)) (Assign= (SymbolRef d) (True true)))))"
        );
    }

    #[test]
    fn fig5_multi_declaration() {
        assert_eq!(
            s("var a, b, c, d;"),
            "(Toplevel (Var (VarDef (SymbolVar a)) (VarDef (SymbolVar b)) (VarDef (SymbolVar \
             c)) (VarDef (SymbolVar d))))"
        );
    }

    #[test]
    fn operator_precedence() {
        assert_eq!(
            s("x = a + b * c;"),
            "(Toplevel (Assign= (SymbolRef x) (Binary+ (SymbolRef a) \
             (Binary* (SymbolRef b) (SymbolRef c)))))"
        );
    }

    #[test]
    fn logical_and_equality_tiers() {
        assert_eq!(
            s("ok = a === 1 && b < 2 || c;"),
            "(Toplevel (Assign= (SymbolRef ok) (Binary|| (Binary&& \
             (Binary=== (SymbolRef a) (Number 1)) (Binary< (SymbolRef b) (Number 2))) \
             (SymbolRef c))))"
        );
    }

    #[test]
    fn function_declaration_fig8() {
        let src = "function f(a, b, c) { b.open('GET', a, false); b.send(c); }";
        assert_eq!(
            s(src),
            "(Toplevel (Defun (SymbolDefun f) (SymbolFunarg a) (SymbolFunarg b) (SymbolFunarg \
             c) (Call (Dot (SymbolRef b) (Property open)) (String GET) \
             (SymbolRef a) (False false)) (Call (Dot (SymbolRef b) \
             (Property send)) (SymbolRef c))))"
        );
    }

    #[test]
    fn classic_for_loop() {
        let src = "for (var i = 0; i < n; i++) { total += i; }";
        assert_eq!(
            s(src),
            "(Toplevel (For (Var (VarDef (SymbolVar i) (Number 0))) (Binary< (SymbolRef i) \
             (SymbolRef n)) (UnaryPostfix++ (SymbolRef i)) (Assign+= \
             (SymbolRef total) (SymbolRef i))))"
        );
    }

    #[test]
    fn for_in_and_for_of() {
        assert_eq!(
            s("for (var k in obj) { f(k); }"),
            "(Toplevel (ForIn (VarDef (SymbolVar k)) (SymbolRef obj) (Call \
             (SymbolRef f) (SymbolRef k))))"
        );
        assert_eq!(
            s("for (const v of items) g(v);"),
            "(Toplevel (ForOf (VarDef (SymbolVar v)) (SymbolRef items) (Call \
             (SymbolRef g) (SymbolRef v))))"
        );
    }

    #[test]
    fn arrow_functions() {
        assert_eq!(
            s("cb = x => x + 1;"),
            "(Toplevel (Assign= (SymbolRef cb) (Arrow (SymbolFunarg x) \
             (Binary+ (SymbolRef x) (Number 1)))))"
        );
        assert_eq!(
            s("cb = (a, b) => { return a; };"),
            "(Toplevel (Assign= (SymbolRef cb) (Arrow (SymbolFunarg a) \
             (SymbolFunarg b) (Block (Return (SymbolRef a))))))"
        );
    }

    #[test]
    fn object_and_array_literals() {
        assert_eq!(
            s("var o = { a: 1, b: [2, 3] };"),
            "(Toplevel (Var (VarDef (SymbolVar o) (Object (ObjectKeyVal (Key a) (Number 1)) \
             (ObjectKeyVal (Key b) (Array (Number 2) (Number 3)))))))"
        );
    }

    #[test]
    fn try_catch_finally() {
        assert_eq!(
            s("try { f(); } catch (e) { g(e); } finally { h(); }"),
            "(Toplevel (Try (Block (Call (SymbolRef f))) (Catch \
             (SymbolCatch e) (Block (Call (SymbolRef g) (SymbolRef e)))) \
             (Finally (Block (Call (SymbolRef h))))))"
        );
    }

    #[test]
    fn switch_cases() {
        assert_eq!(
            s("switch (x) { case 1: f(); break; default: g(); }"),
            "(Toplevel (Switch (SymbolRef x) (Case (Number 1) (Call \
             (SymbolRef f)) (Break)) (Default (Call (SymbolRef g)))))"
        );
    }

    #[test]
    fn conditional_and_new() {
        assert_eq!(
            s("var r = p ? new Foo(1) : null;"),
            "(Toplevel (Var (VarDef (SymbolVar r) (Conditional (SymbolRef p) (New (SymbolRef \
             Foo) (Number 1)) (Null null)))))"
        );
    }

    #[test]
    fn do_while_and_throw() {
        assert_eq!(
            s("do { i--; } while (i > 0);"),
            "(Toplevel (Do (Block (UnaryPostfix-- (SymbolRef i))) (Binary> \
             (SymbolRef i) (Number 0))))"
        );
        assert_eq!(
            s("throw new Error('bad');"),
            "(Toplevel (Throw (New (SymbolRef Error) (String bad))))"
        );
    }

    #[test]
    fn function_expression_value() {
        assert_eq!(
            s("var f = function (x) { return x; };"),
            "(Toplevel (Var (VarDef (SymbolVar f) (Function (SymbolFunarg x) (Return \
             (SymbolRef x))))))"
        );
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = parse("var = 3;").unwrap_err();
        assert!(err.message.contains("expected identifier"));
        assert_eq!(err.offset, 4);
        assert!(parse("if (").is_err());
        assert!(parse("x +").is_err());
        assert!(parse("try { }").is_err());
    }

    #[test]
    fn invariants_hold_on_parsed_trees() {
        let ast = parse(
            "function count(values, target) { var c = 0; for (var i = 0; i < values.length; \
             i++) { if (values[i] === target) { c++; } } return c; }",
        )
        .unwrap();
        ast.check_invariants().unwrap();
        assert!(ast.leaves().len() > 10);
    }
}
