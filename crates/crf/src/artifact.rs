//! The compiled binary model artifact (`.pgnc`).
//!
//! JSON model files are the archival format: editable, diffable, and
//! carrying the full entry tables. Serving replicas want the opposite
//! trade — the *compiled* CSR form ([`crate::compiled`]) written flat,
//! so a cold start is one read plus a handful of bulk array decodes
//! with no per-entry allocation, hashing, or sorting. This module
//! defines that format:
//!
//! ```text
//! header   (32 bytes)  magic "PGNC" · version u32 · quant u32 ·
//!                      section_count u32 · file checksum u64 ·
//!                      reserved u64
//! table    (32 bytes per section)  id u32 · reserved u32 ·
//!                      offset u64 · len u64 · payload checksum u64
//! payloads 8-byte aligned, zero-padded between sections
//! ```
//!
//! All integers are little-endian. The file checksum (FNV-1a-64) covers
//! every byte of the file except itself — header prefix, section table,
//! payloads *and* padding — so any single flipped bit anywhere in the
//! file is detected; the per-section checksums localise the damage for
//! `pigeon audit`.
//! Sections hold the CSR arrays verbatim (`offsets`/`keys`/`weights`
//! per weight table, `offsets`/`entries`/`labels` for candidates), the
//! label-count and vocabulary tables, and a small metadata section the
//! facade fills in. Eight-byte alignment keeps the door open for
//! true zero-copy (mmap + cast) loading later without a format bump.
//!
//! Weights may be quantized: `f16` halves the weight sections, `i8`
//! quarters them with one scale per path. Scales are the smallest
//! power of two `p` with `max|w|/p < 127.5`, which makes dequantization
//! (`q · p`) exact in `f32` and guarantees the per-path maximum
//! quantized magnitude is ≥ 64 — so re-encoding a loaded artifact
//! recomputes the identical scale, and compile → load → recompile is
//! byte-identical for every quantization mode (property-tested in
//! `tests/artifact.rs`).
//!
//! Decoding trusts nothing: magic, version, section bounds, checksums,
//! CSR monotonicity, key ordering, id ranges against the shipped
//! vocabularies, weight finiteness and the inference-cap bounds are all
//! checked, and every failure is an `Err` — never a panic — on
//! truncated or bit-flipped input.

use crate::compiled::{
    shared_from_parts, CompiledCrf, FrozenWeights, PackedCandidates, PackedWeights,
};
use crate::model::{CrfModel, MAX_CANDIDATES_BOUND, MAX_PASSES_BOUND};
use std::sync::Arc;

/// The four magic bytes every artifact starts with.
pub const MAGIC: [u8; 4] = *b"PGNC";

/// Current format version. Readers reject other versions outright: the
/// format is flat enough that cross-version migration is `pigeon
/// compile` run again from the JSON model.
pub const VERSION: u32 = 1;

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 32;

/// Length of one section-table entry in bytes.
pub const TABLE_ENTRY_LEN: usize = 32;

/// Hard cap on the section count a reader will accept — far above what
/// the format defines, but low enough that a corrupted count cannot
/// drive a pathological table allocation.
pub const MAX_SECTIONS: u32 = 64;

// Section ids. Gaps are reserved for future sections.
/// Facade metadata: language/target/abstraction strings + extraction limits.
pub const SEC_META: u32 = 1;
/// Label vocabulary string table, interner order.
pub const SEC_LABELS: u32 = 2;
/// Feature vocabulary string table, interner order.
pub const SEC_FEATURES: u32 = 3;
/// `u32` training frequency per label id.
pub const SEC_LABEL_COUNTS: u32 = 4;
/// `u32` global fallback candidate labels, most frequent first.
pub const SEC_GLOBAL_CANDIDATES: u32 = 5;
/// Pairwise CSR offsets (`u32`, one per path id + 1).
pub const SEC_PAIR_OFFSETS: u32 = 6;
/// Pairwise packed keys (`u64 = label_a << 32 | label_b`), sorted per path.
pub const SEC_PAIR_KEYS: u32 = 7;
/// Pairwise weights (`f32`/`f16`/`i8` per the header's quant mode).
pub const SEC_PAIR_WEIGHTS: u32 = 8;
/// Per-path `f32` dequantization scales (present only under `i8`).
pub const SEC_PAIR_SCALES: u32 = 9;
/// Unary CSR offsets.
pub const SEC_UNARY_OFFSETS: u32 = 10;
/// Unary keys (`u64 = label`), sorted per path.
pub const SEC_UNARY_KEYS: u32 = 11;
/// Unary weights.
pub const SEC_UNARY_WEIGHTS: u32 = 12;
/// Per-path unary scales (present only under `i8`).
pub const SEC_UNARY_SCALES: u32 = 13;
/// Candidate CSR offsets.
pub const SEC_CAND_OFFSETS: u32 = 14;
/// Candidate entries: `u64 key (other_label << 1 | side)` + `u32 start`
/// + `u32 len` into the candidate label pool, sorted by key per path.
pub const SEC_CAND_ENTRIES: u32 = 15;
/// Candidate label pool (`u32`, frequency-ranked within each entry).
pub const SEC_CAND_LABELS: u32 = 16;
/// Inference caps: `u64 max_candidates` + `u64 max_passes`.
pub const SEC_CAPS: u32 = 17;

// Checkpoint sections (containers of kind [`KIND_CHECKPOINT`]; see
// `crate::checkpoint`).
/// Checkpoint scalar state: fingerprint, epoch, position, RNG state.
pub const SEC_CK_META: u32 = 40;
/// Shuffle order for the checkpointed epoch (`u32` per instance).
pub const SEC_CK_ORDER: u32 = 41;
/// Live pairwise weights: `u32 path` + `u64 key` + `u32 f32-bits` each.
pub const SEC_CK_PAIR: u32 = 42;
/// Live unary weights, same layout as [`SEC_CK_PAIR`].
pub const SEC_CK_UNARY: u32 = 43;
/// Epoch-average pair sums: `u32 path,a,b,pad` + `u64 f64-bits` each.
pub const SEC_CK_PAIR_SUM: u32 = 44;
/// Epoch-average unary sums: `u32 path,label` + `u64 f64-bits` each.
pub const SEC_CK_UNARY_SUM: u32 = 45;

// Partial-statistics sections (containers of kind [`KIND_PARTIAL`];
// see `pigeon_eval::partial`).
/// Shard metadata: extraction config fingerprint + shard coordinates.
pub const SEC_PT_META: u32 = 60;
/// Per-document records: local vocabularies, instance, statistics.
pub const SEC_PT_DOCS: u32 = 61;

// Container kinds, recorded at header bytes 24..28 (formerly reserved,
// so every pre-kind artifact reads as a model).
/// A compiled model artifact ([`read_artifact`]).
pub const KIND_MODEL: u32 = 0;
/// A partial training-statistics file (`pigeon train --emit-partial`).
pub const KIND_PARTIAL: u32 = 1;
/// An SGD checkpoint (`pigeon train --checkpoint-dir`).
pub const KIND_CHECKPOINT: u32 = 2;

/// Human-readable name of a container kind, for diagnostics.
pub fn kind_name(kind: u32) -> &'static str {
    match kind {
        KIND_MODEL => "model",
        KIND_PARTIAL => "partial",
        KIND_CHECKPOINT => "checkpoint",
        _ => "unknown",
    }
}

/// The container kind of `bytes`, if it carries the artifact magic and
/// a full header — the sniff `pigeon audit` dispatches on. Content
/// validation still goes through [`Reader::parse`].
pub fn container_kind(bytes: &[u8]) -> Option<u32> {
    if !is_artifact(bytes) || bytes.len() < HEADER_LEN {
        return None;
    }
    Some(u32::from_le_bytes([
        bytes[24], bytes[25], bytes[26], bytes[27],
    ]))
}

/// Human-readable name of a section id, for diagnostics.
pub fn section_name(id: u32) -> &'static str {
    match id {
        SEC_META => "meta",
        SEC_LABELS => "labels",
        SEC_FEATURES => "features",
        SEC_LABEL_COUNTS => "label-counts",
        SEC_GLOBAL_CANDIDATES => "global-candidates",
        SEC_PAIR_OFFSETS => "pair-offsets",
        SEC_PAIR_KEYS => "pair-keys",
        SEC_PAIR_WEIGHTS => "pair-weights",
        SEC_PAIR_SCALES => "pair-scales",
        SEC_UNARY_OFFSETS => "unary-offsets",
        SEC_UNARY_KEYS => "unary-keys",
        SEC_UNARY_WEIGHTS => "unary-weights",
        SEC_UNARY_SCALES => "unary-scales",
        SEC_CAND_OFFSETS => "cand-offsets",
        SEC_CAND_ENTRIES => "cand-entries",
        SEC_CAND_LABELS => "cand-labels",
        SEC_CAPS => "caps",
        SEC_CK_META => "ck-meta",
        SEC_CK_ORDER => "ck-order",
        SEC_CK_PAIR => "ck-pair",
        SEC_CK_UNARY => "ck-unary",
        SEC_CK_PAIR_SUM => "ck-pair-sum",
        SEC_CK_UNARY_SUM => "ck-unary-sum",
        SEC_PT_META => "pt-meta",
        SEC_PT_DOCS => "pt-docs",
        _ => "unknown",
    }
}

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// FNV-1a-64 over `bytes` — the artifact's checksum function. Public so
/// tests can forge otherwise-consistent corrupted files and assert the
/// deeper validation layers fire.
pub fn checksum(bytes: &[u8]) -> u64 {
    fnv(0xcbf2_9ce4_8422_2325, bytes)
}

/// The whole-file checksum: FNV-1a-64 over the complete file with the
/// checksum field itself (bytes 16..24) read as zero, so *every* other
/// byte — header prefix, section table, payloads and padding — is
/// covered and any single flipped bit is detected. Public for tests
/// that forge corrupted-but-consistent files.
pub fn file_checksum(data: &[u8]) -> u64 {
    let h = checksum(&data[..16]);
    let h = fnv(h, &[0u8; 8]);
    fnv(h, &data[24..])
}

/// Weight quantization mode, recorded in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quant {
    /// Full-precision `f32` weights (the default).
    F32,
    /// IEEE 754 half-precision weights: half the bytes, exact for the
    /// weight magnitudes CRF training produces far more often than not.
    F16,
    /// Signed-byte weights with one power-of-two scale per path:
    /// quarter the bytes.
    I8,
}

impl Quant {
    /// Parses a `--quantize` flag value.
    pub fn from_name(name: &str) -> Option<Quant> {
        match name {
            "f32" => Some(Quant::F32),
            "f16" => Some(Quant::F16),
            "i8" => Some(Quant::I8),
            _ => None,
        }
    }

    /// The flag-value spelling of this mode.
    pub fn name(self) -> &'static str {
        match self {
            Quant::F32 => "f32",
            Quant::F16 => "f16",
            Quant::I8 => "i8",
        }
    }

    fn tag(self) -> u32 {
        match self {
            Quant::F32 => 0,
            Quant::F16 => 1,
            Quant::I8 => 2,
        }
    }

    fn from_tag(tag: u32) -> Option<Quant> {
        match tag {
            0 => Some(Quant::F32),
            1 => Some(Quant::F16),
            2 => Some(Quant::I8),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Bulk codecs. Decoding copies (chunked `from_le_bytes`) rather than
// casting in place: safe on any alignment and endianness, one
// allocation per section, and the compiler vectorises the loop.

/// Encodes a `u32` slice little-endian.
pub fn encode_u32s(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a little-endian `u32` section.
pub fn decode_u32s(bytes: &[u8], what: &str) -> Result<Vec<u32>, String> {
    if !bytes.len().is_multiple_of(4) {
        return Err(format!(
            "{what} section length {} is not a multiple of 4",
            bytes.len()
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Encodes a `u64` slice little-endian.
pub fn encode_u64s(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a little-endian `u64` section.
pub fn decode_u64s(bytes: &[u8], what: &str) -> Result<Vec<u64>, String> {
    if !bytes.len().is_multiple_of(8) {
        return Err(format!(
            "{what} section length {} is not a multiple of 8",
            bytes.len()
        ));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect())
}

/// Encodes an `f32` slice little-endian.
pub fn encode_f32s(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a little-endian `f32` section.
pub fn decode_f32s(bytes: &[u8], what: &str) -> Result<Vec<f32>, String> {
    if !bytes.len().is_multiple_of(4) {
        return Err(format!(
            "{what} section length {} is not a multiple of 4",
            bytes.len()
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Encodes a string table: `u32` count, then `u32` byte length + UTF-8
/// bytes per string.
pub fn encode_strings<'a>(items: impl IntoIterator<Item = &'a str>) -> Vec<u8> {
    let mut body = Vec::new();
    let mut count = 0u32;
    for s in items {
        body.extend_from_slice(&(s.len() as u32).to_le_bytes());
        body.extend_from_slice(s.as_bytes());
        count += 1;
    }
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decodes a string table, returning the strings and the unconsumed
/// remainder of the section (the meta section appends numeric fields
/// after its string table).
pub fn decode_strings<'a>(bytes: &'a [u8], what: &str) -> Result<(Vec<String>, &'a [u8]), String> {
    let truncated = || format!("{what} string table is truncated");
    let mut rest = bytes;
    let mut take = |n: usize| -> Result<&'a [u8], String> {
        if rest.len() < n {
            return Err(truncated());
        }
        let (head, tail) = rest.split_at(n);
        rest = tail;
        Ok(head)
    };
    let count = take(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))?;
    // Each string costs at least its 4-byte length prefix, so `count`
    // is bounded by the section length — reject before allocating.
    if count as usize > bytes.len() / 4 {
        return Err(format!("{what} string table claims {count} entries"));
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let len = take(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))? as usize;
        let raw = take(len)?;
        let s = std::str::from_utf8(raw)
            .map_err(|_| format!("{what} string table entry is not UTF-8"))?;
        out.push(s.to_owned());
    }
    Ok((out, rest))
}

// ---------------------------------------------------------------------------
// Half-precision conversion (hand-written; no half-float dependency).

/// `f16` bits → `f32`, exact for every finite half value.
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = u32::from(h >> 15);
    let exp = u32::from((h >> 10) & 0x1f);
    let man = u32::from(h & 0x3ff);
    let bits = if exp == 0 {
        if man == 0 {
            sign << 31
        } else {
            // Subnormal: value = man · 2⁻²⁴ (exact in f32).
            let v = man as f32 * f32::from_bits(0x3380_0000); // 2^-24
            return if sign == 1 { -v } else { v };
        }
    } else if exp == 0x1f {
        (sign << 31) | 0x7f80_0000 | (man << 13)
    } else {
        (sign << 31) | ((exp + 112) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

/// `f32` → nearest `f16` bits (round-to-nearest-even). Values beyond
/// the half range become ±inf; callers reject those at encode time.
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf or NaN; keep NaN-ness in the payload bit.
        return sign | 0x7c00 | u16::from(man != 0) << 9;
    }
    let e = exp - 127 + 15;
    if e >= 0x1f {
        return sign | 0x7c00; // overflow → inf
    }
    if e <= 0 {
        if e < -10 {
            return sign; // underflow → signed zero
        }
        // Subnormal half: shift the full 24-bit significand down.
        let full = man | 0x0080_0000;
        let shift = (14 - e) as u32;
        let half = full >> shift;
        let rem = full & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let rounded = half + u32::from(rem > halfway || (rem == halfway && half & 1 == 1));
        return sign | rounded as u16;
    }
    let half = ((e as u32) << 10) | (man >> 13);
    let rem = man & 0x1fff;
    // Round half to even; a mantissa carry correctly bumps the exponent.
    let rounded = half + u32::from(rem > 0x1000 || (rem == 0x1000 && half & 1 == 1));
    sign | rounded as u16
}

/// The smallest power of two `p` with `max_abs / p < 127.5` — the i8
/// scale for one path. Power-of-two scales make `q · p` exact in `f32`
/// and pin the largest quantized magnitude into `[64, 127]`, so
/// re-encoding a dequantized table recomputes the identical scale
/// (byte-identity of compile → load → recompile).
fn pow2_scale(max_abs: f32) -> f32 {
    if max_abs == 0.0 {
        return 1.0;
    }
    let mut p = 1.0f32;
    while max_abs / p >= 127.5 {
        p *= 2.0;
    }
    while p > f32::MIN_POSITIVE && max_abs / (p * 0.5) < 127.5 {
        p *= 0.5;
    }
    p
}

// ---------------------------------------------------------------------------
// Container writer / reader.

/// Assembles an artifact from sections. The facade and `pigeon compile`
/// drive this through [`write_artifact`]; it is public for tests that
/// need to forge malformed files.
#[derive(Debug, Default)]
pub struct Writer {
    sections: Vec<(u32, Vec<u8>)>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Appends one section. Order is preserved in the file.
    pub fn section(&mut self, id: u32, payload: Vec<u8>) {
        self.sections.push((id, payload));
    }

    /// Serialises header + table + 8-byte-aligned payloads and fills in
    /// every checksum. The container kind is [`KIND_MODEL`].
    pub fn finish(self, quant: Quant) -> Vec<u8> {
        self.finish_kind(quant, KIND_MODEL)
    }

    /// [`Self::finish`] with an explicit container kind (header bytes
    /// 24..28) — partials and checkpoints share the container but must
    /// never be mistaken for models.
    pub fn finish_kind(self, quant: Quant, kind: u32) -> Vec<u8> {
        let table_end = HEADER_LEN + self.sections.len() * TABLE_ENTRY_LEN;
        // Lay out payloads first: offset of each, 8-byte aligned.
        let mut offsets = Vec::with_capacity(self.sections.len());
        let mut cursor = table_end;
        for (_, payload) in &self.sections {
            cursor = (cursor + 7) & !7;
            offsets.push(cursor);
            cursor += payload.len();
        }
        let mut out = vec![0u8; cursor];
        out[0..4].copy_from_slice(&MAGIC);
        out[4..8].copy_from_slice(&VERSION.to_le_bytes());
        out[8..12].copy_from_slice(&quant.tag().to_le_bytes());
        out[12..16].copy_from_slice(&(self.sections.len() as u32).to_le_bytes());
        // out[16..24] = file checksum, patched last.
        out[24..28].copy_from_slice(&kind.to_le_bytes());
        // out[28..32] reserved.
        for (i, (id, payload)) in self.sections.iter().enumerate() {
            let entry = HEADER_LEN + i * TABLE_ENTRY_LEN;
            out[entry..entry + 4].copy_from_slice(&id.to_le_bytes());
            out[entry + 8..entry + 16].copy_from_slice(&(offsets[i] as u64).to_le_bytes());
            out[entry + 16..entry + 24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
            out[entry + 24..entry + 32].copy_from_slice(&checksum(payload).to_le_bytes());
            out[offsets[i]..offsets[i] + payload.len()].copy_from_slice(payload);
        }
        let file_sum = file_checksum(&out);
        out[16..24].copy_from_slice(&file_sum.to_le_bytes());
        out
    }
}

/// Location of one section inside a parsed artifact, for audit output.
#[derive(Debug, Clone, Copy)]
pub struct SectionInfo {
    /// Section id (`SEC_*`).
    pub id: u32,
    /// Human-readable name of the id.
    pub name: &'static str,
    /// Absolute byte offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
}

/// A parsed artifact container: header fields verified, every section
/// bounds-checked and checksummed. Section *contents* are validated by
/// [`read_artifact`].
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    quant: Quant,
    kind: u32,
    sections: Vec<(u32, usize, usize)>,
}

impl<'a> Reader<'a> {
    /// Parses and verifies the container.
    ///
    /// # Errors
    ///
    /// A message naming the first container-level problem: bad magic,
    /// unsupported version, unknown quant mode, out-of-bounds section,
    /// duplicate section id, or a checksum mismatch.
    pub fn parse(data: &'a [u8]) -> Result<Reader<'a>, String> {
        if data.len() < HEADER_LEN {
            return Err(format!(
                "file is {} bytes, shorter than the {HEADER_LEN}-byte header",
                data.len()
            ));
        }
        if data[0..4] != MAGIC {
            return Err("bad magic: not a pigeon compiled model artifact".into());
        }
        let u32_at =
            |i: usize| u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
        let u64_at = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&data[i..i + 8]);
            u64::from_le_bytes(b)
        };
        let version = u32_at(4);
        if version != VERSION {
            return Err(format!(
                "unsupported artifact version {version} (this build reads version {VERSION}); \
                 re-run `pigeon compile` against the JSON model"
            ));
        }
        let quant = Quant::from_tag(u32_at(8))
            .ok_or_else(|| format!("unknown quantization mode tag {}", u32_at(8)))?;
        let count = u32_at(12);
        if count > MAX_SECTIONS {
            return Err(format!(
                "section count {count} exceeds the format maximum of {MAX_SECTIONS}"
            ));
        }
        let table_end = HEADER_LEN + count as usize * TABLE_ENTRY_LEN;
        if data.len() < table_end {
            return Err(format!(
                "file is {} bytes, too short for a {count}-section table",
                data.len()
            ));
        }
        if u64_at(16) != file_checksum(data) {
            return Err("file checksum mismatch: the artifact is corrupted".into());
        }
        let mut sections = Vec::with_capacity(count as usize);
        for i in 0..count as usize {
            let entry = HEADER_LEN + i * TABLE_ENTRY_LEN;
            let id = u32_at(entry);
            let offset = u64_at(entry + 8);
            let len = u64_at(entry + 16);
            let end = offset
                .checked_add(len)
                .filter(|&e| e <= data.len() as u64 && offset >= table_end as u64)
                .ok_or_else(|| {
                    format!(
                        "section {} ({}) spans bytes {offset}..{} outside the \
                         {}-byte file",
                        id,
                        section_name(id),
                        offset.saturating_add(len),
                        data.len()
                    )
                })?;
            if sections.iter().any(|&(other, _, _)| other == id) {
                return Err(format!("duplicate section id {id} ({})", section_name(id)));
            }
            let payload = &data[offset as usize..end as usize];
            if u64_at(entry + 24) != checksum(payload) {
                return Err(format!(
                    "section {} ({}) checksum mismatch: the artifact is corrupted",
                    id,
                    section_name(id)
                ));
            }
            sections.push((id, offset as usize, len as usize));
        }
        Ok(Reader {
            data,
            quant,
            kind: u32::from_le_bytes([data[24], data[25], data[26], data[27]]),
            sections,
        })
    }

    /// The header's quantization mode.
    pub fn quant(&self) -> Quant {
        self.quant
    }

    /// The header's container kind (`KIND_*`).
    pub fn kind(&self) -> u32 {
        self.kind
    }

    /// Section table, in file order.
    pub fn sections(&self) -> Vec<SectionInfo> {
        self.sections
            .iter()
            .map(|&(id, offset, len)| SectionInfo {
                id,
                name: section_name(id),
                offset: offset as u64,
                len: len as u64,
            })
            .collect()
    }

    /// The payload of section `id`.
    ///
    /// # Errors
    ///
    /// When the artifact has no such section.
    pub fn section(&self, id: u32) -> Result<&'a [u8], String> {
        self.sections
            .iter()
            .find(|&&(other, _, _)| other == id)
            .map(|&(_, offset, len)| &self.data[offset..offset + len])
            .ok_or_else(|| format!("missing section {id} ({})", section_name(id)))
    }
}

/// `true` when `bytes` starts with the artifact magic — the content
/// sniff `pigeon serve` and the CLI use to pick the load path.
pub fn is_artifact(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

// ---------------------------------------------------------------------------
// Model-level encode / decode.

/// Facade metadata carried in the artifact's meta section, as plain
/// strings — this crate stays representation-agnostic; the facade
/// resolves them back into its own enums (and rejects unknown names).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// Language name (`Language::name`).
    pub language: String,
    /// Prediction target: `variables` / `methods` / `other`.
    pub target: String,
    /// Path abstraction name (`Abstraction::name`).
    pub abstraction: String,
    /// Extraction limit: maximum path length.
    pub max_length: u32,
    /// Extraction limit: maximum path width.
    pub max_width: u32,
    /// Whether semi-paths were extracted.
    pub semi_paths: bool,
    /// Candidates returned per prediction.
    pub top_k: u32,
    /// Whether edge-typed data-flow path-contexts were extracted.
    /// Encoded as a fifth meta number **only when set**, so artifacts
    /// written with the knob off are byte-identical to pre-knob files
    /// and old readers only reject files that actually need the flag.
    pub dataflow_contexts: bool,
}

/// A fully decoded artifact: metadata, vocabularies, and an
/// artifact-backed [`CrfModel`] ready for inference.
#[derive(Debug)]
pub struct ModelArtifact {
    /// Facade metadata.
    pub meta: ArtifactMeta,
    /// Label vocabulary, id order.
    pub labels: Vec<String>,
    /// Feature vocabulary, id order.
    pub features: Vec<String>,
    /// The weight quantization the file used.
    pub quant: Quant,
    /// The loaded model (`CrfModel::is_artifact_backed() == true`).
    pub model: CrfModel,
}

fn encode_weights(
    w: &mut Writer,
    weights_id: u32,
    scales_id: u32,
    table: &PackedWeights,
    quant: Quant,
) -> Result<(), String> {
    let what = section_name(weights_id);
    for (i, &v) in table.weights.iter().enumerate() {
        if !v.is_finite() {
            return Err(format!("{what}: weight {i} is non-finite ({v})"));
        }
    }
    match quant {
        Quant::F32 => w.section(weights_id, encode_f32s(&table.weights)),
        Quant::F16 => {
            let mut out = Vec::with_capacity(table.weights.len() * 2);
            for &v in &table.weights {
                let h = f32_to_f16(v);
                if !f16_to_f32(h).is_finite() {
                    return Err(format!(
                        "{what}: weight {v} exceeds the f16 range; \
                         compile with f32 or i8 quantization"
                    ));
                }
                out.extend_from_slice(&h.to_le_bytes());
            }
            w.section(weights_id, out);
        }
        Quant::I8 => {
            let num_paths = table.offsets.len().saturating_sub(1);
            let mut scales = Vec::with_capacity(num_paths);
            let mut out = Vec::with_capacity(table.weights.len());
            for p in 0..num_paths {
                let (s, e) = (table.offsets[p] as usize, table.offsets[p + 1] as usize);
                let max_abs = table.weights[s..e]
                    .iter()
                    .fold(0.0f32, |m, v| m.max(v.abs()));
                let scale = pow2_scale(max_abs);
                scales.push(scale);
                for &v in &table.weights[s..e] {
                    let q = (v / scale).round().clamp(-127.0, 127.0) as i8;
                    out.push(q as u8);
                }
            }
            w.section(weights_id, out);
            w.section(scales_id, encode_f32s(&scales));
        }
    }
    Ok(())
}

fn decode_weights(
    r: &Reader,
    weights_id: u32,
    scales_id: u32,
    num_paths: usize,
    offsets: &[u32],
) -> Result<Vec<f32>, String> {
    let what = section_name(weights_id);
    let bytes = r.section(weights_id)?;
    let weights = match r.quant() {
        Quant::F32 => decode_f32s(bytes, what)?,
        Quant::F16 => {
            if !bytes.len().is_multiple_of(2) {
                return Err(format!(
                    "{what} section length {} is not a multiple of 2",
                    bytes.len()
                ));
            }
            bytes
                .chunks_exact(2)
                .map(|c| f16_to_f32(u16::from_le_bytes([c[0], c[1]])))
                .collect()
        }
        Quant::I8 => {
            let scales = decode_f32s(r.section(scales_id)?, section_name(scales_id))?;
            if scales.len() != num_paths {
                return Err(format!(
                    "{} holds {} scales for {num_paths} paths",
                    section_name(scales_id),
                    scales.len()
                ));
            }
            for (p, &s) in scales.iter().enumerate() {
                if !(s.is_finite() && s > 0.0) {
                    return Err(format!(
                        "{} scale for path {p} is {s}, not a positive finite value",
                        section_name(scales_id)
                    ));
                }
            }
            let mut out = Vec::with_capacity(bytes.len());
            for p in 0..num_paths {
                let (s, e) = (offsets[p] as usize, offsets[p + 1] as usize);
                // Offsets were bounds-checked against the entry count
                // before this call.
                for &q in &bytes[s..e] {
                    out.push(f32::from(q as i8) * scales[p]);
                }
            }
            out
        }
    };
    for (i, &v) in weights.iter().enumerate() {
        if !v.is_finite() {
            return Err(format!("{what}: weight {i} decodes to non-finite {v}"));
        }
    }
    Ok(weights)
}

/// Checks one CSR offsets array: starts at 0, monotone, ends at
/// `num_entries`, and stays within the feature vocabulary.
fn check_offsets(
    offsets: &[u32],
    num_entries: usize,
    num_features: usize,
    what: &str,
) -> Result<(), String> {
    if offsets.is_empty() || offsets[0] != 0 {
        return Err(format!("{what} must start with offset 0"));
    }
    // Path ids are feature ids; an offsets table longer than the
    // vocabulary (plus the one-path floor of an empty model) smuggles
    // out-of-range ids in by construction.
    if offsets.len() - 1 > num_features.max(1) {
        return Err(format!(
            "{what} describes {} paths, but the feature vocabulary has \
             {num_features} entries",
            offsets.len() - 1
        ));
    }
    for w in offsets.windows(2) {
        if w[1] < w[0] {
            return Err(format!("{what} is not monotone"));
        }
    }
    if *offsets.last().expect("non-empty checked above") as usize != num_entries {
        return Err(format!(
            "{what} ends at {}, but the table holds {num_entries} entries",
            offsets.last().expect("non-empty checked above")
        ));
    }
    Ok(())
}

/// Checks per-path key slices are strictly increasing (the binary
/// search the engine runs requires it; equal keys would be the binary
/// form of the duplicate-entry corruption the JSON loader rejects).
fn check_sorted_keys(offsets: &[u32], keys: &[u64], what: &str) -> Result<(), String> {
    for p in 0..offsets.len() - 1 {
        let slice = &keys[offsets[p] as usize..offsets[p + 1] as usize];
        for w in slice.windows(2) {
            if w[1] <= w[0] {
                return Err(format!(
                    "{what}: keys for path {p} are not strictly increasing \
                     (duplicate or unsorted entry)"
                ));
            }
        }
    }
    Ok(())
}

/// Encodes `model`'s compiled form plus facade metadata and
/// vocabularies into a complete artifact.
///
/// # Errors
///
/// When the model carries non-finite weights, or a weight exceeds the
/// `f16` range under `Quant::F16`.
pub fn write_artifact(
    meta: &ArtifactMeta,
    labels: &[String],
    features: &[String],
    model: &CrfModel,
    quant: Quant,
) -> Result<Vec<u8>, String> {
    let compiled = model.compiled();
    let mut w = Writer::new();
    let mut meta_bytes = encode_strings([
        meta.language.as_str(),
        meta.target.as_str(),
        meta.abstraction.as_str(),
    ]);
    let mut meta_nums = vec![
        meta.max_length,
        meta.max_width,
        u32::from(meta.semi_paths),
        meta.top_k,
    ];
    if meta.dataflow_contexts {
        meta_nums.push(1);
    }
    meta_bytes.extend_from_slice(&encode_u32s(&meta_nums));
    w.section(SEC_META, meta_bytes);
    w.section(
        SEC_LABELS,
        encode_strings(labels.iter().map(String::as_str)),
    );
    w.section(
        SEC_FEATURES,
        encode_strings(features.iter().map(String::as_str)),
    );
    w.section(SEC_LABEL_COUNTS, encode_u32s(&model.label_counts));
    w.section(SEC_GLOBAL_CANDIDATES, encode_u32s(&model.global_candidates));
    let pair = &compiled.weights.pair;
    w.section(SEC_PAIR_OFFSETS, encode_u32s(&pair.offsets));
    w.section(SEC_PAIR_KEYS, encode_u64s(&pair.keys));
    encode_weights(&mut w, SEC_PAIR_WEIGHTS, SEC_PAIR_SCALES, pair, quant)?;
    let unary = &compiled.weights.unary;
    w.section(SEC_UNARY_OFFSETS, encode_u32s(&unary.offsets));
    w.section(SEC_UNARY_KEYS, encode_u64s(&unary.keys));
    encode_weights(&mut w, SEC_UNARY_WEIGHTS, SEC_UNARY_SCALES, unary, quant)?;
    let cands = &compiled.shared.cands;
    w.section(SEC_CAND_OFFSETS, encode_u32s(&cands.offsets));
    let mut entry_bytes = Vec::with_capacity(cands.entries.len() * 16);
    for &(key, start, len) in &cands.entries {
        entry_bytes.extend_from_slice(&key.to_le_bytes());
        entry_bytes.extend_from_slice(&start.to_le_bytes());
        entry_bytes.extend_from_slice(&len.to_le_bytes());
    }
    w.section(SEC_CAND_ENTRIES, entry_bytes);
    w.section(SEC_CAND_LABELS, encode_u32s(&cands.labels));
    w.section(
        SEC_CAPS,
        encode_u64s(&[model.max_candidates as u64, model.max_passes as u64]),
    );
    Ok(w.finish(quant))
}

/// Decodes and fully validates an artifact produced by
/// [`write_artifact`].
///
/// # Errors
///
/// A message naming the first problem found, at any layer: container
/// (magic/version/bounds/checksums), section shape, CSR structure, id
/// ranges against the shipped vocabularies, non-finite weights, or
/// out-of-bounds inference caps. Never panics on arbitrary input
/// (fuzzed in `tests/artifact.rs`).
pub fn read_artifact(bytes: &[u8]) -> Result<ModelArtifact, String> {
    let r = Reader::parse(bytes)?;
    if r.kind() != KIND_MODEL {
        return Err(format!(
            "container holds a {} (kind {}), not a compiled model",
            kind_name(r.kind()),
            r.kind()
        ));
    }

    let meta_bytes = r.section(SEC_META)?;
    let (meta_strings, meta_rest) = decode_strings(meta_bytes, "meta")?;
    let [language, target, abstraction]: [String; 3] = meta_strings
        .try_into()
        .map_err(|_| "meta section must hold exactly 3 strings".to_string())?;
    let meta_nums = decode_u32s(meta_rest, "meta")?;
    // 4 numbers is the original layout; a 5th (data-flow contexts) is
    // appended only when the flag is set, keeping knob-off artifacts
    // byte-identical to files written before the flag existed.
    let [max_length, max_width, semi_paths, top_k, dataflow_contexts] = match meta_nums.len() {
        4 => [meta_nums[0], meta_nums[1], meta_nums[2], meta_nums[3], 0],
        5 => [
            meta_nums[0],
            meta_nums[1],
            meta_nums[2],
            meta_nums[3],
            meta_nums[4],
        ],
        n => {
            return Err(format!(
                "meta section must hold 4 or 5 numeric fields, got {n}"
            ))
        }
    };
    let meta = ArtifactMeta {
        language,
        target,
        abstraction,
        max_length,
        max_width,
        semi_paths: semi_paths != 0,
        top_k,
        dataflow_contexts: dataflow_contexts != 0,
    };

    let (labels, rest) = decode_strings(r.section(SEC_LABELS)?, "labels")?;
    if !rest.is_empty() {
        return Err("labels section has trailing bytes".into());
    }
    let (features, rest) = decode_strings(r.section(SEC_FEATURES)?, "features")?;
    if !rest.is_empty() {
        return Err("features section has trailing bytes".into());
    }
    let num_labels = labels.len();
    let num_features = features.len();
    let check_label = |what: &str, id: u32| -> Result<(), String> {
        if id as usize >= num_labels {
            return Err(format!(
                "{what} references label id {id}, but the label vocabulary has \
                 {num_labels} entries"
            ));
        }
        Ok(())
    };

    let label_counts = decode_u32s(r.section(SEC_LABEL_COUNTS)?, "label-counts")?;
    if label_counts.len() != num_labels {
        return Err(format!(
            "label-count table has {} entries, but the label vocabulary has \
             {num_labels}",
            label_counts.len()
        ));
    }
    let global_candidates = decode_u32s(r.section(SEC_GLOBAL_CANDIDATES)?, "global-candidates")?;
    for &l in &global_candidates {
        check_label("global candidate list", l)?;
    }

    let caps = decode_u64s(r.section(SEC_CAPS)?, "caps")?;
    let [max_candidates, max_passes]: [u64; 2] = caps
        .try_into()
        .map_err(|_| "caps section must hold exactly 2 fields".to_string())?;
    if max_candidates > MAX_CANDIDATES_BOUND as u64 {
        return Err(format!(
            "max_candidates is {max_candidates}, above the bound of {MAX_CANDIDATES_BOUND}"
        ));
    }
    if max_passes > MAX_PASSES_BOUND as u64 {
        return Err(format!(
            "max_passes is {max_passes}, above the bound of {MAX_PASSES_BOUND}"
        ));
    }

    // Pairwise weight table.
    let pair_offsets = decode_u32s(r.section(SEC_PAIR_OFFSETS)?, "pair-offsets")?;
    let pair_keys = decode_u64s(r.section(SEC_PAIR_KEYS)?, "pair-keys")?;
    check_offsets(&pair_offsets, pair_keys.len(), num_features, "pair-offsets")?;
    check_sorted_keys(&pair_offsets, &pair_keys, "pair-keys")?;
    for &key in &pair_keys {
        check_label("pairwise weight", (key >> 32) as u32)?;
        check_label("pairwise weight", key as u32)?;
    }
    let pair_weights = decode_weights(
        &r,
        SEC_PAIR_WEIGHTS,
        SEC_PAIR_SCALES,
        pair_offsets.len() - 1,
        &pair_offsets,
    )?;
    if pair_weights.len() != pair_keys.len() {
        return Err(format!(
            "pair-weights holds {} entries for {} keys",
            pair_weights.len(),
            pair_keys.len()
        ));
    }

    // Unary weight table.
    let unary_offsets = decode_u32s(r.section(SEC_UNARY_OFFSETS)?, "unary-offsets")?;
    let unary_keys = decode_u64s(r.section(SEC_UNARY_KEYS)?, "unary-keys")?;
    check_offsets(
        &unary_offsets,
        unary_keys.len(),
        num_features,
        "unary-offsets",
    )?;
    check_sorted_keys(&unary_offsets, &unary_keys, "unary-keys")?;
    for &key in &unary_keys {
        if key > u64::from(u32::MAX) {
            return Err(format!("unary weight key {key} is not a label id"));
        }
        check_label("unary weight", key as u32)?;
    }
    let unary_weights = decode_weights(
        &r,
        SEC_UNARY_WEIGHTS,
        SEC_UNARY_SCALES,
        unary_offsets.len() - 1,
        &unary_offsets,
    )?;
    if unary_weights.len() != unary_keys.len() {
        return Err(format!(
            "unary-weights holds {} entries for {} keys",
            unary_weights.len(),
            unary_keys.len()
        ));
    }

    // Candidate index.
    let cand_offsets = decode_u32s(r.section(SEC_CAND_OFFSETS)?, "cand-offsets")?;
    let entry_bytes = r.section(SEC_CAND_ENTRIES)?;
    if !entry_bytes.len().is_multiple_of(16) {
        return Err(format!(
            "cand-entries section length {} is not a multiple of 16",
            entry_bytes.len()
        ));
    }
    let cand_entries: Vec<(u64, u32, u32)> = entry_bytes
        .chunks_exact(16)
        .map(|c| {
            let mut k = [0u8; 8];
            k.copy_from_slice(&c[0..8]);
            (
                u64::from_le_bytes(k),
                u32::from_le_bytes([c[8], c[9], c[10], c[11]]),
                u32::from_le_bytes([c[12], c[13], c[14], c[15]]),
            )
        })
        .collect();
    let cand_labels = decode_u32s(r.section(SEC_CAND_LABELS)?, "cand-labels")?;
    check_offsets(
        &cand_offsets,
        cand_entries.len(),
        num_features,
        "cand-offsets",
    )?;
    let entry_keys: Vec<u64> = cand_entries.iter().map(|&(k, _, _)| k).collect();
    check_sorted_keys(&cand_offsets, &entry_keys, "cand-entries")?;
    for &(key, start, len) in &cand_entries {
        check_label("candidate table", (key >> 1) as u32)?;
        if len == 0 {
            return Err(format!(
                "candidate entry with key {key} carries no suggestions"
            ));
        }
        if u64::from(start) + u64::from(len) > cand_labels.len() as u64 {
            return Err(format!(
                "candidate entry with key {key} points at labels {start}..{} \
                 beyond the {}-entry label pool",
                u64::from(start) + u64::from(len),
                cand_labels.len()
            ));
        }
    }
    for &l in &cand_labels {
        check_label("candidate suggestion", l)?;
    }

    // Assemble the frozen engine directly from the decoded arrays — the
    // same constructor path `CrfModel::compile` ends in, so priors and
    // label-slot bounds are bit-identical to a JSON load.
    let shared = shared_from_parts(
        PackedCandidates {
            offsets: cand_offsets,
            entries: cand_entries,
            labels: cand_labels,
        },
        &label_counts,
        global_candidates.clone(),
        max_candidates as usize,
        max_passes as usize,
    );
    let compiled = CompiledCrf {
        shared,
        weights: FrozenWeights {
            pair: PackedWeights {
                offsets: pair_offsets,
                keys: pair_keys,
                weights: pair_weights,
            },
            unary: PackedWeights {
                offsets: unary_offsets,
                keys: unary_keys,
                weights: unary_weights,
            },
        },
    };
    let model = CrfModel {
        label_counts,
        global_candidates,
        max_candidates: max_candidates as usize,
        max_passes: max_passes as usize,
        frozen: Some(Arc::new(compiled)),
        ..CrfModel::default()
    };
    Ok(ModelArtifact {
        meta,
        labels,
        features,
        quant: r.quant(),
        model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trip_is_exact_for_every_half_value() {
        for h in 0..=u16::MAX {
            let f = f16_to_f32(h);
            if f.is_finite() {
                assert_eq!(f32_to_f16(f), h, "half bits {h:#06x} drifted");
            }
        }
    }

    #[test]
    fn f16_conversion_matches_known_values() {
        assert_eq!(f16_to_f32(0x3c00), 1.0);
        assert_eq!(f16_to_f32(0xc000), -2.0);
        assert_eq!(f16_to_f32(0x7bff), 65504.0);
        assert_eq!(f32_to_f16(0.5), 0x3800);
        assert_eq!(f32_to_f16(0.0), 0x0000);
        assert!(!f16_to_f32(f32_to_f16(1e9)).is_finite(), "overflow → inf");
    }

    #[test]
    fn pow2_scale_pins_quantized_max_into_range() {
        for max_abs in [1e-6f32, 0.03, 0.5, 1.0, 127.0, 127.6, 1e4] {
            let p = pow2_scale(max_abs);
            let q = (max_abs / p).round();
            assert!(q <= 127.0, "max_abs {max_abs}: q {q} overflows");
            assert!(
                q >= 64.0,
                "max_abs {max_abs}: q {q} below re-derivation floor"
            );
            // The scale is a power of two: one mantissa bit.
            assert_eq!(p.to_bits() & 0x007f_ffff, 0, "scale {p} not a power of two");
        }
    }

    #[test]
    fn string_table_round_trips() {
        let bytes = encode_strings(["", "a", "länger"]);
        let (strings, rest) = decode_strings(&bytes, "test").unwrap();
        assert_eq!(strings, vec!["", "a", "länger"]);
        assert!(rest.is_empty());
    }

    #[test]
    fn writer_output_parses_and_exposes_sections() {
        let mut w = Writer::new();
        w.section(SEC_META, vec![1, 2, 3]);
        w.section(SEC_CAPS, encode_u64s(&[4, 5]));
        let bytes = w.finish(Quant::F32);
        let r = Reader::parse(&bytes).unwrap();
        assert_eq!(r.section(SEC_META).unwrap(), &[1, 2, 3]);
        assert_eq!(r.section(SEC_CAPS).unwrap().len(), 16);
        assert!(r.section(SEC_LABELS).is_err());
        // Payloads are 8-byte aligned.
        for s in r.sections() {
            assert_eq!(s.offset % 8, 0, "section {} misaligned", s.name);
        }
    }

    #[test]
    fn any_single_byte_flip_is_detected() {
        let mut w = Writer::new();
        w.section(SEC_META, vec![7; 13]);
        let bytes = w.finish(Quant::F32);
        assert!(Reader::parse(&bytes).is_ok());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xff;
            assert!(Reader::parse(&bad).is_err(), "flip at byte {i} not caught");
        }
    }
}
