//! Max-margin training (structured perceptron subgradient on the
//! margin-rescaled objective), as in Nice2Predict.
//!
//! Each update runs **loss-augmented MAP** under the current weights and
//! moves weights toward the gold assignment's features and away from the
//! violating assignment's — the subgradient of the structured hinge loss.
//! Weight averaging over updates gives the stability of the averaged
//! perceptron without per-feature regularisation bookkeeping.
//!
//! The inner loop runs on the compiled engine of [`crate::compiled`]:
//! weights live in indexed per-path buckets (no tuple hashing in
//! scoring), inference reuses one workspace across every update and
//! sweeps with delta-ICM. Statistics gathering fans out over
//! [`pigeon_core::parallel_map_indexed`] when [`CrfConfig::jobs`] allows.
//! The trained model is **byte-identical** for any `jobs` value — and to
//! the pre-compilation implementation (pinned in `tests/golden_train.rs`)
//! — because updates stay sequential in the same shuffled order and the
//! statistics merge is a sum of per-chunk integer counts.

use crate::compiled::{compile_shared, infer, pair_key, BucketWeights, Workspace};
use crate::instance::Instance;
use crate::model::CrfModel;
use pigeon_core::parallel_map_indexed;
use pigeon_telemetry as telemetry;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct CrfConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Step size for each subgradient update.
    pub learning_rate: f32,
    /// ICM sweeps per inference call.
    pub max_passes: usize,
    /// Cap on candidate labels per node during inference.
    pub max_candidates: usize,
    /// Number of globally frequent labels always in the candidate set.
    pub global_candidates: usize,
    /// Suggestions kept per `(path, other_label, side)` key.
    pub suggestions_per_key: usize,
    /// Whether unary factors participate (the paper's §5.1 extension;
    /// disabling them is the ablation knob).
    pub use_unary: bool,
    /// Shuffling seed.
    pub seed: u64,
    /// Worker threads for the statistics pass (`0` = all cores). The
    /// subgradient loop itself stays sequential — the trained model is
    /// identical under any value.
    pub jobs: usize,
}

impl Default for CrfConfig {
    fn default() -> Self {
        CrfConfig {
            epochs: 8,
            learning_rate: 0.1,
            max_passes: 6,
            max_candidates: 48,
            global_candidates: 16,
            suggestions_per_key: 12,
            use_unary: true,
            seed: 0x0C4F_5EED,
            jobs: 1,
        }
    }
}

/// Trains a CRF on `instances`, whose labels range over `0..num_labels`.
///
/// # Panics
///
/// Panics if any instance references a label `>= num_labels`.
pub fn train(instances: &[Instance], num_labels: u32, cfg: &CrfConfig) -> CrfModel {
    let _span = telemetry::span("crf_train");
    // Only the unary ablation needs its own copy (with unary factors
    // stripped); the common path borrows the caller's instances.
    let stripped: Vec<Instance>;
    let instances: &[Instance] = if cfg.use_unary {
        instances
    } else {
        stripped = instances
            .iter()
            .map(|i| Instance {
                nodes: i.nodes.clone(),
                pairwise: i.pairwise.clone(),
                unary: Vec::new(),
            })
            .collect();
        &stripped
    };

    let mut model = CrfModel {
        max_candidates: cfg.max_candidates,
        max_passes: cfg.max_passes,
        ..CrfModel::default()
    };
    build_statistics(&mut model, instances, num_labels, cfg);

    // Freeze the training-invariant engine state (candidate index,
    // prior, caps); weights live in mutable indexed buckets.
    let shared = compile_shared(&model);
    let mut weights = (BucketWeights::new(0), BucketWeights::new(0));
    let mut ws = Workspace::new();

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..instances.len()).collect();

    // Averaged weights: accumulate w after every epoch.
    let mut pair_sum: HashMap<(u32, u32, u32), f64> = HashMap::new();
    let mut unary_sum: HashMap<(u32, u32), f64> = HashMap::new();

    for _epoch in 0..cfg.epochs {
        let _epoch_span = telemetry::span("crf_epoch");
        let mut epoch_updates = 0u64;
        order.shuffle(&mut rng);
        for &idx in &order {
            let inst = &instances[idx];
            let gold: Vec<u32> = inst.nodes.iter().map(|n| n.label).collect();
            let predicted = infer(&shared, &weights, inst, true, &mut ws);
            if predicted == gold {
                continue;
            }
            epoch_updates += 1;
            // Subgradient step: +lr toward gold features, -lr away from
            // the violator, only where they disagree.
            for pf in &inst.pairwise {
                let g = (gold[pf.a], gold[pf.b]);
                let p = (predicted[pf.a], predicted[pf.b]);
                if g != p {
                    weights
                        .0
                        .add(pf.path, pair_key(g.0, g.1), cfg.learning_rate);
                    weights
                        .0
                        .add(pf.path, pair_key(p.0, p.1), -cfg.learning_rate);
                }
            }
            for uf in &inst.unary {
                let g = gold[uf.node];
                let p = predicted[uf.node];
                if g != p {
                    weights.1.add(uf.path, u64::from(g), cfg.learning_rate);
                    weights.1.add(uf.path, u64::from(p), -cfg.learning_rate);
                }
            }
        }
        weights.0.for_each(|path, key, w| {
            let k = (path, (key >> 32) as u32, key as u32);
            *pair_sum.entry(k).or_insert(0.0) += f64::from(w);
        });
        weights.1.for_each(|path, key, w| {
            *unary_sum.entry((path, key as u32)).or_insert(0.0) += f64::from(w);
        });
        // The per-epoch objective proxy: how many instances still violate
        // the margin (drove a subgradient update) this epoch.
        telemetry::count("pigeon_crf_updates_total", epoch_updates);
    }

    // Replace final weights by the epoch average.
    let denom = cfg.epochs.max(1) as f64;
    model.pair_weights = pair_sum
        .into_iter()
        .map(|(k, w)| (k, (w / denom) as f32))
        .filter(|&(_, w)| w != 0.0)
        .collect();
    model.unary_weights = unary_sum
        .into_iter()
        .map(|(k, w)| (k, (w / denom) as f32))
        .filter(|&(_, w)| w != 0.0)
        .collect();
    model
}

/// Per-chunk statistics: label counts over unknown nodes and the
/// `(path, other_label, side)` → gold-label co-occurrence counts.
type ChunkStats = (Vec<u32>, HashMap<(u32, u32, u8), HashMap<u32, u32>>);

fn chunk_statistics(chunk: &[Instance], num_labels: u32) -> ChunkStats {
    let mut counts = vec![0u32; num_labels as usize];
    let mut suggestions: HashMap<(u32, u32, u8), HashMap<u32, u32>> = HashMap::new();
    for inst in chunk {
        for node in &inst.nodes {
            if !node.known {
                counts[node.label as usize] += 1;
            }
        }
        for pf in &inst.pairwise {
            let (la, lb) = (inst.nodes[pf.a].label, inst.nodes[pf.b].label);
            if !inst.nodes[pf.a].known {
                *suggestions
                    .entry((pf.path, lb, 0))
                    .or_default()
                    .entry(la)
                    .or_insert(0) += 1;
            }
            if !inst.nodes[pf.b].known {
                *suggestions
                    .entry((pf.path, la, 1))
                    .or_default()
                    .entry(lb)
                    .or_insert(0) += 1;
            }
        }
    }
    (counts, suggestions)
}

/// First pass over the data: label counts, global candidates, and the
/// per-feature candidate suggestion index. Fans out over contiguous
/// chunks and merges in chunk order; because every merge is integer
/// addition, the result is identical to a serial pass for any `jobs`.
fn build_statistics(
    model: &mut CrfModel,
    instances: &[Instance],
    num_labels: u32,
    cfg: &CrfConfig,
) {
    let _span = telemetry::span("crf_statistics");
    // Validate serially first so the panic (message and which label
    // triggers it) is deterministic regardless of `jobs`.
    for inst in instances {
        for node in &inst.nodes {
            assert!(
                node.label < num_labels,
                "label {} out of range {num_labels}",
                node.label
            );
        }
    }

    // Shard count is FIXED (not derived from `jobs`): telemetry recorded
    // per shard must be byte-identical for any `--jobs`, and the merge
    // below is commutative integer addition, so the statistics themselves
    // are unaffected by how many workers process the shards.
    const STAT_SHARDS: usize = 16;
    let (mut counts, mut suggestions) = if instances.is_empty() {
        chunk_statistics(instances, num_labels)
    } else {
        let shards = STAT_SHARDS.min(instances.len());
        let chunk_size = instances.len().div_ceil(shards);
        let chunks: Vec<&[Instance]> = instances.chunks(chunk_size).collect();
        let mut partials = parallel_map_indexed(&chunks, cfg.jobs, |_, chunk| {
            chunk_statistics(chunk, num_labels)
        })
        .into_iter();
        let (mut counts, mut suggestions) = partials.next().expect("at least one chunk");
        for (c, s) in partials {
            for (total, part) in counts.iter_mut().zip(&c) {
                *total += part;
            }
            for (key, by_label) in s {
                let slot = suggestions.entry(key).or_default();
                for (label, n) in by_label {
                    *slot.entry(label).or_insert(0) += n;
                }
            }
        }
        (counts, suggestions)
    };

    let mut by_freq: Vec<u32> = (0..num_labels).collect();
    by_freq.sort_by_key(|&l| std::cmp::Reverse(counts[l as usize]));
    by_freq.truncate(cfg.global_candidates);
    model.global_candidates = by_freq;
    model.label_counts = std::mem::take(&mut counts);

    model.candidates = suggestions
        .drain()
        .map(|(key, by_label)| {
            let mut v: Vec<(u32, u32)> = by_label.into_iter().collect();
            v.sort_by_key(|&(l, c)| (std::cmp::Reverse(c), l));
            v.truncate(cfg.suggestions_per_key);
            (key, v)
        })
        .collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Node;
    use rand::Rng;

    /// A learnable toy world: the label of an unknown node is a function
    /// of the path connecting it to a known node — path p links unknowns
    /// of label (p mod L) to knowns of label (p mod 3).
    fn toy_world(n_instances: usize, n_paths: u32, n_labels: u32, seed: u64) -> Vec<Instance> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n_instances)
            .map(|_| {
                let path = rng.gen_range(0..n_paths);
                let gold = path % n_labels;
                let known = n_labels + (path % 3);
                let mut inst = Instance::new(vec![Node::unknown(gold), Node::known(known)]);
                inst.add_pair(0, 1, path);
                inst
            })
            .collect()
    }

    #[test]
    fn training_learns_a_path_determined_mapping() {
        let num_labels = 5 + 3;
        let train_set = toy_world(400, 20, 5, 1);
        let test_set = toy_world(100, 20, 5, 2);
        let model = train(&train_set, num_labels, &CrfConfig::default());
        let mut correct = 0;
        for inst in &test_set {
            if model.predict(inst)[0] == inst.nodes[0].label {
                correct += 1;
            }
        }
        assert!(correct >= 95, "learned {correct}/100");
    }

    #[test]
    fn unary_factors_improve_a_unary_determined_world() {
        // Gold label equals the unary path id; pairwise evidence is noise.
        let mut rng = SmallRng::seed_from_u64(3);
        let make = |rng: &mut SmallRng| -> Vec<Instance> {
            (0..300)
                .map(|_| {
                    let path = rng.gen_range(0..6u32);
                    let mut inst = Instance::new(vec![
                        Node::unknown(path),
                        Node::known(6 + rng.gen_range(0..2)),
                    ]);
                    inst.add_unary(0, path);
                    inst.add_pair(0, 1, 99);
                    inst
                })
                .collect()
        };
        let train_set = make(&mut rng);
        let test_set = make(&mut rng);
        let with = train(&train_set, 8, &CrfConfig::default());
        let without = train(
            &train_set,
            8,
            &CrfConfig {
                use_unary: false,
                ..CrfConfig::default()
            },
        );
        let acc = |m: &CrfModel| {
            test_set
                .iter()
                .filter(|i| m.predict(i)[0] == i.nodes[0].label)
                .count()
        };
        assert!(
            acc(&with) > acc(&without) + 50,
            "unary {} vs no-unary {}",
            acc(&with),
            acc(&without)
        );
    }

    #[test]
    fn joint_inference_propagates_between_unknowns() {
        // Two unknowns: A is pinned by a known via path 0; B is only
        // linked to A via path 1, with gold(B) = gold(A) + 2.
        let mut rng = SmallRng::seed_from_u64(5);
        let make = |rng: &mut SmallRng| -> Vec<Instance> {
            (0..400)
                .map(|_| {
                    let a = rng.gen_range(0..2u32);
                    let b = a + 2;
                    let mut inst =
                        Instance::new(vec![Node::unknown(a), Node::unknown(b), Node::known(4 + a)]);
                    inst.add_pair(0, 2, a);
                    inst.add_pair(0, 1, 10);
                    inst
                })
                .collect()
        };
        let train_set = make(&mut rng);
        let test_set = make(&mut rng);
        let model = train(&train_set, 6, &CrfConfig::default());
        let mut correct_b = 0;
        for inst in &test_set {
            let labels = model.predict(inst);
            if labels[1] == inst.nodes[1].label {
                correct_b += 1;
            }
        }
        assert!(
            correct_b >= 350,
            "joint inference solved only {correct_b}/400 B nodes"
        );
    }

    #[test]
    fn training_is_deterministic_under_a_seed() {
        let train_set = toy_world(100, 10, 4, 7);
        let a = train(&train_set, 7, &CrfConfig::default());
        let b = train(&train_set, 7, &CrfConfig::default());
        let test = toy_world(50, 10, 4, 8);
        for inst in &test {
            assert_eq!(a.predict(inst), b.predict(inst));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let inst = Instance::new(vec![Node::unknown(9)]);
        let _ = train(&[inst], 3, &CrfConfig::default());
    }
}
