//! Max-margin training (structured perceptron subgradient on the
//! margin-rescaled objective), as in Nice2Predict.
//!
//! Each update runs **loss-augmented MAP** under the current weights and
//! moves weights toward the gold assignment's features and away from the
//! violating assignment's — the subgradient of the structured hinge loss.
//! Weight averaging over updates gives the stability of the averaged
//! perceptron without per-feature regularisation bookkeeping.
//!
//! The inner loop runs on the compiled engine of [`crate::compiled`]:
//! weights live in indexed per-path buckets (no tuple hashing in
//! scoring), inference reuses one workspace across every update and
//! sweeps with delta-ICM. Statistics gathering fans out over
//! [`pigeon_core::parallel_map_indexed`] when [`CrfConfig::jobs`] allows.
//! The trained model is **byte-identical** for any `jobs` value — and to
//! the pre-compilation implementation (pinned in `tests/golden_train.rs`)
//! — because updates stay sequential in the same shuffled order and the
//! statistics merge is a sum of per-chunk integer counts.
//!
//! Three scale-out entry points build on the same loop:
//!
//! - [`RawStatistics`] is the pre-truncation count state. Shard workers
//!   collect it per document, [`RawStatistics::absorb`] merges partials
//!   by integer addition, and [`train_from_statistics`] finishes training
//!   from the merged counts — byte-identical to a single-process
//!   [`train`] because candidate truncation and global-candidate
//!   derivation only ever run on the fully merged counts.
//! - [`train_resumable`] threads a [`TrainControl`] through the SGD loop:
//!   periodic [`TrainState`] snapshots (weights, averaging sums, shuffle
//!   order, exact RNG state), a polled interrupt that yields a mid-epoch
//!   snapshot, and resume from a snapshot that replays the remaining
//!   updates exactly — the resumed model is byte-identical to an
//!   uninterrupted run.
//! - [`train_incremental`] folds new documents' statistics into an
//!   existing model's count state and warm-starts SGD from its weights,
//!   skipping re-extraction of the original corpus.

use crate::compiled::{compile_shared, infer, pair_key, BucketWeights, Workspace};
use crate::instance::Instance;
use crate::model::CrfModel;
use pigeon_core::parallel_map_indexed;
use pigeon_telemetry as telemetry;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrfConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Step size for each subgradient update.
    pub learning_rate: f32,
    /// ICM sweeps per inference call.
    pub max_passes: usize,
    /// Cap on candidate labels per node during inference.
    pub max_candidates: usize,
    /// Number of globally frequent labels always in the candidate set.
    pub global_candidates: usize,
    /// Suggestions kept per `(path, other_label, side)` key.
    pub suggestions_per_key: usize,
    /// Whether unary factors participate (the paper's §5.1 extension;
    /// disabling them is the ablation knob).
    pub use_unary: bool,
    /// Shuffling seed.
    pub seed: u64,
    /// Worker threads for the statistics pass (`0` = all cores). The
    /// subgradient loop itself stays sequential — the trained model is
    /// identical under any value.
    pub jobs: usize,
}

impl Default for CrfConfig {
    fn default() -> Self {
        CrfConfig {
            epochs: 8,
            learning_rate: 0.1,
            max_passes: 6,
            max_candidates: 48,
            global_candidates: 16,
            suggestions_per_key: 12,
            use_unary: true,
            seed: 0x0C4F_5EED,
            jobs: 1,
        }
    }
}

/// Pre-truncation training statistics: label counts over unknown nodes
/// and the `(path, other_label, side)` → gold-label co-occurrence
/// counts. Unlike the truncated tables stored on [`CrfModel`], this is
/// closed under merging — summing two `RawStatistics` gives exactly the
/// statistics of the concatenated corpora, which is what makes sharded
/// training byte-identical to a single pass.
#[derive(Debug, Clone, Default)]
pub struct RawStatistics {
    /// Unknown-node occurrences per label id.
    pub counts: Vec<u32>,
    /// `(path, other_label, side)` → gold label → co-occurrence count.
    pub suggestions: HashMap<(u32, u32, u8), HashMap<u32, u32>>,
}

impl RawStatistics {
    /// Empty statistics over `num_labels` labels.
    pub fn new(num_labels: u32) -> Self {
        RawStatistics {
            counts: vec![0; num_labels as usize],
            suggestions: HashMap::new(),
        }
    }

    /// Collects statistics over `instances` in one serial pass.
    ///
    /// # Panics
    ///
    /// Panics if any instance references a label `>= num_labels` or a
    /// node index out of range (instances built through
    /// [`Instance::add_pair`] cannot trigger the latter).
    pub fn collect(instances: &[Instance], num_labels: u32) -> Self {
        let mut stats = RawStatistics::new(num_labels);
        for inst in instances {
            for node in &inst.nodes {
                if !node.known {
                    stats.counts[node.label as usize] += 1;
                }
            }
            for pf in &inst.pairwise {
                let (la, lb) = (inst.nodes[pf.a].label, inst.nodes[pf.b].label);
                if !inst.nodes[pf.a].known {
                    *stats
                        .suggestions
                        .entry((pf.path, lb, 0))
                        .or_default()
                        .entry(la)
                        .or_insert(0) += 1;
                }
                if !inst.nodes[pf.b].known {
                    *stats
                        .suggestions
                        .entry((pf.path, la, 1))
                        .or_default()
                        .entry(lb)
                        .or_insert(0) += 1;
                }
            }
        }
        stats
    }

    /// Adds `other` into `self` (commutative integer addition).
    ///
    /// # Panics
    ///
    /// Panics if the two sides disagree on the number of labels.
    pub fn absorb(&mut self, other: &RawStatistics) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "statistics label spaces differ"
        );
        for (total, part) in self.counts.iter_mut().zip(&other.counts) {
            *total += part;
        }
        for (key, by_label) in &other.suggestions {
            let slot = self.suggestions.entry(*key).or_default();
            for (&label, &n) in by_label {
                *slot.entry(label).or_insert(0) += n;
            }
        }
    }
}

/// A snapshot of the SGD loop sufficient to resume it exactly: epoch
/// index, position within the (saved) shuffle order, raw RNG state,
/// current weights, and the epoch-average accumulators. Produced by
/// [`train_resumable`] via [`TrainControl`]; serialised by
/// [`crate::checkpoint`].
#[derive(Debug, Clone)]
pub struct TrainState {
    /// Epoch the loop is in (0-based; `pos` instances already done).
    pub(crate) epoch: usize,
    /// Next position in `order` to process.
    pub(crate) pos: usize,
    /// Whether `order` is the live shuffle for `epoch` (mid-epoch
    /// snapshot) or stale (epoch-boundary snapshot; resume reshuffles).
    pub(crate) shuffled: bool,
    /// Instance visit order for the current epoch.
    pub(crate) order: Vec<u32>,
    /// Raw xoshiro256++ state of the shuffle RNG.
    pub(crate) rng: [u64; 4],
    /// Live pairwise weights as `(path, packed_label_pair, weight)`,
    /// sorted by `(path, key)`.
    pub(crate) pair: Vec<(u32, u64, f32)>,
    /// Live unary weights as `(path, label, weight)`, sorted.
    pub(crate) unary: Vec<(u32, u64, f32)>,
    /// Epoch-average accumulator for pairwise weights, sorted by key.
    pub(crate) pair_sum: Vec<(u32, u32, u32, f64)>,
    /// Epoch-average accumulator for unary weights, sorted by key.
    pub(crate) unary_sum: Vec<(u32, u32, f64)>,
    /// Corpus/config fingerprint; resume refuses a mismatch.
    pub(crate) fingerprint: TrainFingerprint,
}

impl TrainState {
    /// Epoch the snapshot was taken in (0-based).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Instances of the current epoch already processed.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Total epochs the run was configured for.
    pub fn total_epochs(&self) -> usize {
        self.fingerprint.epochs as usize
    }
}

/// The training inputs a checkpoint is only valid for. Everything that
/// shapes the update trajectory is included; `jobs` is not (the model is
/// invariant to it).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TrainFingerprint {
    pub(crate) num_instances: u64,
    pub(crate) num_labels: u32,
    pub(crate) epochs: u64,
    pub(crate) learning_rate: f32,
    pub(crate) max_passes: u64,
    pub(crate) max_candidates: u64,
    pub(crate) global_candidates: u64,
    pub(crate) suggestions_per_key: u64,
    pub(crate) use_unary: bool,
    pub(crate) seed: u64,
}

impl TrainFingerprint {
    fn new(num_instances: usize, num_labels: u32, cfg: &CrfConfig) -> Self {
        TrainFingerprint {
            num_instances: num_instances as u64,
            num_labels,
            epochs: cfg.epochs as u64,
            learning_rate: cfg.learning_rate,
            max_passes: cfg.max_passes as u64,
            max_candidates: cfg.max_candidates as u64,
            global_candidates: cfg.global_candidates as u64,
            suggestions_per_key: cfg.suggestions_per_key as u64,
            use_unary: cfg.use_unary,
            seed: cfg.seed,
        }
    }
}

/// Hooks into the SGD loop: resume from a snapshot, snapshot every N
/// epochs, and a polled interrupt (checked once per instance) that stops
/// the loop with a mid-epoch snapshot instead of discarding work.
#[derive(Default)]
pub struct TrainControl<'a> {
    /// Continue from this snapshot instead of starting fresh.
    pub resume: Option<TrainState>,
    /// Snapshot every N completed epochs (`0` = never). The final epoch
    /// is not snapshotted — the model itself is the result.
    pub checkpoint_every: usize,
    /// Called with each periodic snapshot (the caller persists it).
    pub on_checkpoint: Option<&'a mut dyn FnMut(&TrainState)>,
    /// Polled before each instance; returning `true` stops the loop with
    /// [`TrainOutcome::Interrupted`].
    pub interrupt: Option<&'a dyn Fn() -> bool>,
}

/// Result of a resumable run: the finished model, or the snapshot at the
/// point the interrupt fired.
#[derive(Debug)]
pub enum TrainOutcome {
    /// Training ran to completion.
    Completed(Box<CrfModel>),
    /// The interrupt fired; resume later from this snapshot.
    Interrupted(Box<TrainState>),
}

/// Trains a CRF on `instances`, whose labels range over `0..num_labels`.
///
/// # Panics
///
/// Panics if any instance references a label `>= num_labels`.
pub fn train(instances: &[Instance], num_labels: u32, cfg: &CrfConfig) -> CrfModel {
    match train_resumable(instances, num_labels, cfg, TrainControl::default()) {
        Ok(TrainOutcome::Completed(model)) => *model,
        Ok(TrainOutcome::Interrupted(_)) => unreachable!("no interrupt installed"),
        Err(e) => panic!("{e}"),
    }
}

/// [`train`] with checkpoint/resume/interrupt hooks. With a default
/// [`TrainControl`] this is exactly [`train`]; with `resume` it replays
/// the remaining updates so the final model is byte-identical to an
/// uninterrupted run.
///
/// # Errors
///
/// Label out of range, or a resume snapshot whose fingerprint does not
/// match `(instances, num_labels, cfg)`.
pub fn train_resumable(
    instances: &[Instance],
    num_labels: u32,
    cfg: &CrfConfig,
    control: TrainControl<'_>,
) -> Result<TrainOutcome, String> {
    let _span = telemetry::span("crf_train");
    let stripped: Vec<Instance>;
    let instances: &[Instance] = if cfg.use_unary {
        instances
    } else {
        stripped = strip_unary(instances);
        &stripped
    };
    validate_labels(instances, num_labels)?;

    let mut model = CrfModel {
        max_candidates: cfg.max_candidates,
        max_passes: cfg.max_passes,
        ..CrfModel::default()
    };
    let stats = gather_statistics(instances, num_labels, cfg);
    finish_statistics(&mut model, stats, cfg);
    sgd(model, instances, num_labels, cfg, control)
}

/// Finishes training from pre-merged statistics (the `pigeon merge`
/// path): derives the truncated candidate tables from `stats` exactly as
/// a single-process pass would, then runs the standard SGD loop.
///
/// # Errors
///
/// Label out of range, or `stats` covering a different label space.
pub fn train_from_statistics(
    instances: &[Instance],
    num_labels: u32,
    cfg: &CrfConfig,
    stats: RawStatistics,
) -> Result<CrfModel, String> {
    let _span = telemetry::span("crf_train");
    let stripped: Vec<Instance>;
    let instances: &[Instance] = if cfg.use_unary {
        instances
    } else {
        stripped = strip_unary(instances);
        &stripped
    };
    validate_labels(instances, num_labels)?;
    if stats.counts.len() != num_labels as usize {
        return Err(format!(
            "statistics cover {} labels but the corpus has {num_labels}",
            stats.counts.len()
        ));
    }

    let mut model = CrfModel {
        max_candidates: cfg.max_candidates,
        max_passes: cfg.max_passes,
        ..CrfModel::default()
    };
    finish_statistics(&mut model, stats, cfg);
    match sgd(model, instances, num_labels, cfg, TrainControl::default())? {
        TrainOutcome::Completed(model) => Ok(*model),
        TrainOutcome::Interrupted(_) => unreachable!("no interrupt installed"),
    }
}

/// Folds `new_stats` (statistics over `new_instances` only) into
/// `base`'s count state, warm-starts weights from `base`, and runs SGD
/// over the new instances only. An approximation of full retraining —
/// the old corpus's updates are frozen into the warm start and its
/// candidate lists were already truncated — but it never re-reads the
/// original corpus.
///
/// # Errors
///
/// Artifact-backed base models (their count tables are frozen), label
/// out of range, or mismatched statistics.
pub fn train_incremental(
    new_instances: &[Instance],
    num_labels: u32,
    cfg: &CrfConfig,
    base: &CrfModel,
    new_stats: &RawStatistics,
) -> Result<CrfModel, String> {
    let _span = telemetry::span("crf_train_incremental");
    if base.is_artifact_backed() {
        return Err("incremental update needs a JSON-loaded model; \
                    compiled artifacts freeze the count tables"
            .to_owned());
    }
    let stripped: Vec<Instance>;
    let new_instances: &[Instance] = if cfg.use_unary {
        new_instances
    } else {
        stripped = strip_unary(new_instances);
        &stripped
    };
    validate_labels(new_instances, num_labels)?;
    if new_stats.counts.len() != num_labels as usize {
        return Err(format!(
            "statistics cover {} labels but the corpus has {num_labels}",
            new_stats.counts.len()
        ));
    }
    if base.label_counts.len() > num_labels as usize {
        return Err(format!(
            "base model has {} labels but the updated vocabulary has {num_labels}",
            base.label_counts.len()
        ));
    }

    // Fold the new counts into the base model's (truncated) tables. The
    // base's candidate lists already lost their tail, so this is an
    // approximation; the surviving counts still rank candidates well.
    let mut stats = RawStatistics::new(num_labels);
    stats.counts[..base.label_counts.len()].copy_from_slice(&base.label_counts);
    for (key, suggested) in base.candidate_entries() {
        let slot = stats.suggestions.entry(key).or_default();
        for &(label, count) in suggested {
            *slot.entry(label).or_insert(0) += count;
        }
    }
    stats.absorb(new_stats);

    let mut model = CrfModel {
        max_candidates: cfg.max_candidates,
        max_passes: cfg.max_passes,
        ..CrfModel::default()
    };
    finish_statistics(&mut model, stats, cfg);

    // Warm-start the buckets from the base weights; SGD then only sees
    // the new instances. Epoch averaging keeps the warm start (it is
    // part of every epoch's snapshot).
    let shared = compile_shared(&model);
    let mut weights = (BucketWeights::new(0), BucketWeights::new(0));
    for (&(path, a, b), &w) in &base.pair_weights {
        weights.0.add(path, pair_key(a, b), w);
    }
    for (&(path, label), &w) in &base.unary_weights {
        weights.1.add(path, u64::from(label), w);
    }
    let mut ws = Workspace::new();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..new_instances.len()).collect();
    let mut pair_sum: HashMap<(u32, u32, u32), f64> = HashMap::new();
    let mut unary_sum: HashMap<(u32, u32), f64> = HashMap::new();
    for _epoch in 0..cfg.epochs {
        let _epoch_span = telemetry::span("crf_epoch");
        let mut epoch_updates = 0u64;
        order.shuffle(&mut rng);
        for &idx in &order {
            epoch_updates += sgd_step(&shared, &mut weights, &new_instances[idx], cfg, &mut ws);
        }
        accumulate_sums(&weights, &mut pair_sum, &mut unary_sum);
        telemetry::count("pigeon_crf_updates_total", epoch_updates);
    }
    finalize_weights(&mut model, pair_sum, unary_sum, cfg.epochs);
    Ok(model)
}

fn strip_unary(instances: &[Instance]) -> Vec<Instance> {
    instances
        .iter()
        .map(|i| Instance {
            nodes: i.nodes.clone(),
            pairwise: i.pairwise.clone(),
            unary: Vec::new(),
        })
        .collect()
}

fn validate_labels(instances: &[Instance], num_labels: u32) -> Result<(), String> {
    // Validate serially so the error (message and which label triggers
    // it) is deterministic regardless of `jobs`.
    for inst in instances {
        for node in &inst.nodes {
            if node.label >= num_labels {
                return Err(format!("label {} out of range {num_labels}", node.label));
            }
        }
    }
    Ok(())
}

/// One loss-augmented inference + subgradient step; returns 1 if the
/// instance violated the margin (drove an update).
fn sgd_step(
    shared: &crate::compiled::EngineShared,
    weights: &mut (BucketWeights, BucketWeights),
    inst: &Instance,
    cfg: &CrfConfig,
    ws: &mut Workspace,
) -> u64 {
    let gold: Vec<u32> = inst.nodes.iter().map(|n| n.label).collect();
    let predicted = infer(shared, weights, inst, true, ws);
    if predicted == gold {
        return 0;
    }
    // Subgradient step: +lr toward gold features, -lr away from the
    // violator, only where they disagree.
    for pf in &inst.pairwise {
        let g = (gold[pf.a], gold[pf.b]);
        let p = (predicted[pf.a], predicted[pf.b]);
        if g != p {
            weights
                .0
                .add(pf.path, pair_key(g.0, g.1), cfg.learning_rate);
            weights
                .0
                .add(pf.path, pair_key(p.0, p.1), -cfg.learning_rate);
        }
    }
    for uf in &inst.unary {
        let g = gold[uf.node];
        let p = predicted[uf.node];
        if g != p {
            weights.1.add(uf.path, u64::from(g), cfg.learning_rate);
            weights.1.add(uf.path, u64::from(p), -cfg.learning_rate);
        }
    }
    1
}

/// Accumulates the live weights into the epoch-average sums.
fn accumulate_sums(
    weights: &(BucketWeights, BucketWeights),
    pair_sum: &mut HashMap<(u32, u32, u32), f64>,
    unary_sum: &mut HashMap<(u32, u32), f64>,
) {
    weights.0.for_each(|path, key, w| {
        let k = (path, (key >> 32) as u32, key as u32);
        *pair_sum.entry(k).or_insert(0.0) += f64::from(w);
    });
    weights.1.for_each(|path, key, w| {
        *unary_sum.entry((path, key as u32)).or_insert(0.0) += f64::from(w);
    });
}

/// Replaces the model weights by the epoch average, dropping zeros.
fn finalize_weights(
    model: &mut CrfModel,
    pair_sum: HashMap<(u32, u32, u32), f64>,
    unary_sum: HashMap<(u32, u32), f64>,
    epochs: usize,
) {
    let denom = epochs.max(1) as f64;
    model.pair_weights = pair_sum
        .into_iter()
        .map(|(k, w)| (k, (w / denom) as f32))
        .filter(|&(_, w)| w != 0.0)
        .collect();
    model.unary_weights = unary_sum
        .into_iter()
        .map(|(k, w)| (k, (w / denom) as f32))
        .filter(|&(_, w)| w != 0.0)
        .collect();
}

/// Snapshots the loop. Weight entries come out of `for_each` already
/// sorted; the sum accumulators are sorted here so the snapshot (and its
/// serialised form) is byte-stable.
#[allow(clippy::too_many_arguments)]
fn capture_state(
    epoch: usize,
    pos: usize,
    shuffled: bool,
    order: &[usize],
    rng: &SmallRng,
    weights: &(BucketWeights, BucketWeights),
    pair_sum: &HashMap<(u32, u32, u32), f64>,
    unary_sum: &HashMap<(u32, u32), f64>,
    fingerprint: &TrainFingerprint,
) -> TrainState {
    let mut pair = Vec::new();
    weights.0.for_each(|path, key, w| pair.push((path, key, w)));
    let mut unary = Vec::new();
    weights
        .1
        .for_each(|path, key, w| unary.push((path, key, w)));
    let mut ps: Vec<(u32, u32, u32, f64)> = pair_sum
        .iter()
        .map(|(&(p, a, b), &w)| (p, a, b, w))
        .collect();
    ps.sort_unstable_by_key(|&(p, a, b, _)| (p, a, b));
    let mut us: Vec<(u32, u32, f64)> = unary_sum.iter().map(|(&(p, l), &w)| (p, l, w)).collect();
    us.sort_unstable_by_key(|&(p, l, _)| (p, l));
    TrainState {
        epoch,
        pos,
        shuffled,
        order: order.iter().map(|&i| i as u32).collect(),
        rng: rng.state(),
        pair,
        unary,
        pair_sum: ps,
        unary_sum: us,
        fingerprint: fingerprint.clone(),
    }
}

/// The sequential subgradient loop, resumable. Without hooks the control
/// flow (RNG draws, visit order, update sequence) is identical to the
/// original in-line loop, so [`train`] stays byte-for-byte reproducible.
fn sgd(
    mut model: CrfModel,
    instances: &[Instance],
    num_labels: u32,
    cfg: &CrfConfig,
    mut control: TrainControl<'_>,
) -> Result<TrainOutcome, String> {
    let fingerprint = TrainFingerprint::new(instances.len(), num_labels, cfg);

    // Freeze the training-invariant engine state (candidate index,
    // prior, caps); weights live in mutable indexed buckets.
    let shared = compile_shared(&model);
    let mut ws = Workspace::new();

    let mut weights = (BucketWeights::new(0), BucketWeights::new(0));
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..instances.len()).collect();
    // Averaged weights: accumulate w after every epoch.
    let mut pair_sum: HashMap<(u32, u32, u32), f64> = HashMap::new();
    let mut unary_sum: HashMap<(u32, u32), f64> = HashMap::new();

    let mut start_epoch = 0usize;
    let mut start_pos = 0usize;
    let mut resume_shuffled = false;
    if let Some(state) = control.resume.take() {
        if state.fingerprint != fingerprint {
            return Err("checkpoint does not match this corpus/config \
                        (different instances, labels, or hyper-parameters)"
                .to_owned());
        }
        if state.order.len() != instances.len()
            || state.pos > instances.len()
            || state.epoch > cfg.epochs
        {
            return Err("checkpoint state is inconsistent with the corpus size".to_owned());
        }
        for (path, key, w) in &state.pair {
            weights.0.add(*path, *key, *w);
        }
        for (path, key, w) in &state.unary {
            weights.1.add(*path, *key, *w);
        }
        pair_sum = state
            .pair_sum
            .iter()
            .map(|&(p, a, b, w)| ((p, a, b), w))
            .collect();
        unary_sum = state
            .unary_sum
            .iter()
            .map(|&(p, l, w)| ((p, l), w))
            .collect();
        rng = SmallRng::from_state(state.rng);
        order = state.order.iter().map(|&i| i as usize).collect();
        start_epoch = state.epoch;
        start_pos = state.pos;
        resume_shuffled = state.shuffled;
        telemetry::count("pigeon_crf_resumes_total", 1);
    }

    for epoch in start_epoch..cfg.epochs {
        let _epoch_span = telemetry::span("crf_epoch");
        let mut epoch_updates = 0u64;
        let pos0 = if epoch == start_epoch && resume_shuffled {
            // `order` is the snapshot's live shuffle; pick up mid-epoch.
            start_pos
        } else {
            order.shuffle(&mut rng);
            0
        };
        for i in pos0..order.len() {
            if let Some(stop) = control.interrupt {
                if stop() {
                    telemetry::count("pigeon_crf_updates_total", epoch_updates);
                    let state = capture_state(
                        epoch,
                        i,
                        true,
                        &order,
                        &rng,
                        &weights,
                        &pair_sum,
                        &unary_sum,
                        &fingerprint,
                    );
                    return Ok(TrainOutcome::Interrupted(Box::new(state)));
                }
            }
            epoch_updates += sgd_step(&shared, &mut weights, &instances[order[i]], cfg, &mut ws);
        }
        accumulate_sums(&weights, &mut pair_sum, &mut unary_sum);
        // The per-epoch objective proxy: how many instances still violate
        // the margin (drove a subgradient update) this epoch.
        telemetry::count("pigeon_crf_updates_total", epoch_updates);
        if control.checkpoint_every > 0
            && (epoch + 1) % control.checkpoint_every == 0
            && epoch + 1 < cfg.epochs
        {
            if let Some(sink) = control.on_checkpoint.as_deref_mut() {
                let state = capture_state(
                    epoch + 1,
                    0,
                    false,
                    &order,
                    &rng,
                    &weights,
                    &pair_sum,
                    &unary_sum,
                    &fingerprint,
                );
                sink(&state);
            }
        }
    }

    finalize_weights(&mut model, pair_sum, unary_sum, cfg.epochs);
    Ok(TrainOutcome::Completed(Box::new(model)))
}

/// Sharded statistics gathering; the merge is commutative integer
/// addition, so the result is identical to a serial pass for any `jobs`.
fn gather_statistics(instances: &[Instance], num_labels: u32, cfg: &CrfConfig) -> RawStatistics {
    let _span = telemetry::span("crf_statistics");
    // Shard count is FIXED (not derived from `jobs`): telemetry recorded
    // per shard must be byte-identical for any `--jobs`.
    const STAT_SHARDS: usize = 16;
    if instances.is_empty() {
        return RawStatistics::collect(instances, num_labels);
    }
    let shards = STAT_SHARDS.min(instances.len());
    let chunk_size = instances.len().div_ceil(shards);
    let chunks: Vec<&[Instance]> = instances.chunks(chunk_size).collect();
    let mut partials = parallel_map_indexed(&chunks, cfg.jobs, |_, chunk| {
        RawStatistics::collect(chunk, num_labels)
    })
    .into_iter();
    let mut stats = partials.next().expect("at least one chunk");
    for part in partials {
        stats.absorb(&part);
    }
    stats
}

/// Derives the truncated model tables (global candidates, label counts,
/// per-key suggestion lists) from fully merged statistics. Truncation
/// happens only here — after any shard merge — which is what keeps
/// sharded training byte-identical to a single pass.
fn finish_statistics(model: &mut CrfModel, stats: RawStatistics, cfg: &CrfConfig) {
    let RawStatistics {
        counts,
        suggestions,
    } = stats;
    let mut by_freq: Vec<u32> = (0..counts.len() as u32).collect();
    by_freq.sort_by_key(|&l| std::cmp::Reverse(counts[l as usize]));
    by_freq.truncate(cfg.global_candidates);
    model.global_candidates = by_freq;
    model.label_counts = counts;

    model.candidates = suggestions
        .into_iter()
        .map(|(key, by_label)| {
            let mut v: Vec<(u32, u32)> = by_label.into_iter().collect();
            v.sort_by_key(|&(l, c)| (std::cmp::Reverse(c), l));
            v.truncate(cfg.suggestions_per_key);
            (key, v)
        })
        .collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Node;
    use rand::Rng;

    /// A learnable toy world: the label of an unknown node is a function
    /// of the path connecting it to a known node — path p links unknowns
    /// of label (p mod L) to knowns of label (p mod 3).
    fn toy_world(n_instances: usize, n_paths: u32, n_labels: u32, seed: u64) -> Vec<Instance> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n_instances)
            .map(|_| {
                let path = rng.gen_range(0..n_paths);
                let gold = path % n_labels;
                let known = n_labels + (path % 3);
                let mut inst = Instance::new(vec![Node::unknown(gold), Node::known(known)]);
                inst.add_pair(0, 1, path);
                inst
            })
            .collect()
    }

    #[test]
    fn training_learns_a_path_determined_mapping() {
        let num_labels = 5 + 3;
        let train_set = toy_world(400, 20, 5, 1);
        let test_set = toy_world(100, 20, 5, 2);
        let model = train(&train_set, num_labels, &CrfConfig::default());
        let mut correct = 0;
        for inst in &test_set {
            if model.predict(inst)[0] == inst.nodes[0].label {
                correct += 1;
            }
        }
        assert!(correct >= 95, "learned {correct}/100");
    }

    #[test]
    fn unary_factors_improve_a_unary_determined_world() {
        // Gold label equals the unary path id; pairwise evidence is noise.
        let mut rng = SmallRng::seed_from_u64(3);
        let make = |rng: &mut SmallRng| -> Vec<Instance> {
            (0..300)
                .map(|_| {
                    let path = rng.gen_range(0..6u32);
                    let mut inst = Instance::new(vec![
                        Node::unknown(path),
                        Node::known(6 + rng.gen_range(0..2)),
                    ]);
                    inst.add_unary(0, path);
                    inst.add_pair(0, 1, 99);
                    inst
                })
                .collect()
        };
        let train_set = make(&mut rng);
        let test_set = make(&mut rng);
        let with = train(&train_set, 8, &CrfConfig::default());
        let without = train(
            &train_set,
            8,
            &CrfConfig {
                use_unary: false,
                ..CrfConfig::default()
            },
        );
        let acc = |m: &CrfModel| {
            test_set
                .iter()
                .filter(|i| m.predict(i)[0] == i.nodes[0].label)
                .count()
        };
        assert!(
            acc(&with) > acc(&without) + 50,
            "unary {} vs no-unary {}",
            acc(&with),
            acc(&without)
        );
    }

    #[test]
    fn joint_inference_propagates_between_unknowns() {
        // Two unknowns: A is pinned by a known via path 0; B is only
        // linked to A via path 1, with gold(B) = gold(A) + 2.
        let mut rng = SmallRng::seed_from_u64(5);
        let make = |rng: &mut SmallRng| -> Vec<Instance> {
            (0..400)
                .map(|_| {
                    let a = rng.gen_range(0..2u32);
                    let b = a + 2;
                    let mut inst =
                        Instance::new(vec![Node::unknown(a), Node::unknown(b), Node::known(4 + a)]);
                    inst.add_pair(0, 2, a);
                    inst.add_pair(0, 1, 10);
                    inst
                })
                .collect()
        };
        let train_set = make(&mut rng);
        let test_set = make(&mut rng);
        let model = train(&train_set, 6, &CrfConfig::default());
        let mut correct_b = 0;
        for inst in &test_set {
            let labels = model.predict(inst);
            if labels[1] == inst.nodes[1].label {
                correct_b += 1;
            }
        }
        assert!(
            correct_b >= 350,
            "joint inference solved only {correct_b}/400 B nodes"
        );
    }

    #[test]
    fn training_is_deterministic_under_a_seed() {
        let train_set = toy_world(100, 10, 4, 7);
        let a = train(&train_set, 7, &CrfConfig::default());
        let b = train(&train_set, 7, &CrfConfig::default());
        let test = toy_world(50, 10, 4, 8);
        for inst in &test {
            assert_eq!(a.predict(inst), b.predict(inst));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let inst = Instance::new(vec![Node::unknown(9)]);
        let _ = train(&[inst], 3, &CrfConfig::default());
    }

    #[test]
    fn statistics_merge_matches_single_pass() {
        let world = toy_world(200, 15, 5, 11);
        let whole = RawStatistics::collect(&world, 8);
        // Per-instance collection then absorb, in order.
        let mut merged = RawStatistics::new(8);
        for inst in &world {
            merged.absorb(&RawStatistics::collect(std::slice::from_ref(inst), 8));
        }
        assert_eq!(whole.counts, merged.counts);
        assert_eq!(whole.suggestions, merged.suggestions);
    }

    #[test]
    fn train_from_statistics_matches_train() {
        let world = toy_world(150, 12, 4, 21);
        let cfg = CrfConfig::default();
        let direct = train(&world, 7, &cfg);
        let via_stats =
            train_from_statistics(&world, 7, &cfg, RawStatistics::collect(&world, 7)).unwrap();
        assert_eq!(direct.to_json().unwrap(), via_stats.to_json().unwrap());
    }

    #[test]
    fn interrupt_then_resume_reproduces_the_model() {
        let world = toy_world(120, 10, 4, 31);
        let cfg = CrfConfig::default();
        let baseline = train(&world, 7, &cfg).to_json().unwrap();

        // Interrupt mid-epoch (after 250 polled instances — inside epoch
        // 3 of 8 × 120), then resume to completion.
        let calls = std::cell::Cell::new(0usize);
        let stop = move || {
            calls.set(calls.get() + 1);
            calls.get() > 250
        };
        let outcome = train_resumable(
            &world,
            7,
            &cfg,
            TrainControl {
                interrupt: Some(&stop),
                ..TrainControl::default()
            },
        )
        .unwrap();
        let state = match outcome {
            TrainOutcome::Interrupted(state) => state,
            TrainOutcome::Completed(_) => panic!("interrupt never fired"),
        };
        assert!(state.epoch() > 0 && state.pos() > 0, "not mid-epoch");

        let resumed = match train_resumable(
            &world,
            7,
            &cfg,
            TrainControl {
                resume: Some(*state),
                ..TrainControl::default()
            },
        )
        .unwrap()
        {
            TrainOutcome::Completed(model) => *model,
            TrainOutcome::Interrupted(_) => panic!("no interrupt installed"),
        };
        assert_eq!(baseline, resumed.to_json().unwrap());
    }

    #[test]
    fn epoch_checkpoints_resume_to_the_same_model() {
        let world = toy_world(100, 10, 4, 41);
        let cfg = CrfConfig::default();
        let baseline = train(&world, 7, &cfg).to_json().unwrap();

        let mut snapshots: Vec<TrainState> = Vec::new();
        let mut sink = |s: &TrainState| snapshots.push(s.clone());
        let _ = train_resumable(
            &world,
            7,
            &cfg,
            TrainControl {
                checkpoint_every: 3,
                on_checkpoint: Some(&mut sink),
                ..TrainControl::default()
            },
        )
        .unwrap();
        assert_eq!(snapshots.len(), 2, "epochs 3 and 6 of 8");
        for snap in snapshots {
            let resumed = match train_resumable(
                &world,
                7,
                &cfg,
                TrainControl {
                    resume: Some(snap),
                    ..TrainControl::default()
                },
            )
            .unwrap()
            {
                TrainOutcome::Completed(model) => *model,
                TrainOutcome::Interrupted(_) => panic!("no interrupt installed"),
            };
            assert_eq!(baseline, resumed.to_json().unwrap());
        }
    }

    #[test]
    fn resume_rejects_a_mismatched_fingerprint() {
        let world = toy_world(60, 10, 4, 51);
        let cfg = CrfConfig::default();
        let stop = || true;
        let state = match train_resumable(
            &world,
            7,
            &cfg,
            TrainControl {
                interrupt: Some(&stop),
                ..TrainControl::default()
            },
        )
        .unwrap()
        {
            TrainOutcome::Interrupted(state) => state,
            TrainOutcome::Completed(_) => panic!("interrupt never fired"),
        };
        let other = CrfConfig {
            seed: 1,
            ..CrfConfig::default()
        };
        let err = train_resumable(
            &world,
            7,
            &other,
            TrainControl {
                resume: Some(*state),
                ..TrainControl::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("checkpoint"), "unexpected error: {err}");
    }

    #[test]
    fn incremental_update_absorbs_new_documents() {
        // Train on half the world, then fold in the other half; the
        // updated model should predict the toy mapping about as well as
        // a full retrain.
        let world = toy_world(400, 20, 5, 61);
        let (old, new) = world.split_at(200);
        let cfg = CrfConfig::default();
        let base = train(old, 8, &cfg);
        let updated =
            train_incremental(new, 8, &cfg, &base, &RawStatistics::collect(new, 8)).unwrap();
        let test_set = toy_world(100, 20, 5, 62);
        let acc = |m: &CrfModel| {
            test_set
                .iter()
                .filter(|i| m.predict(i)[0] == i.nodes[0].label)
                .count()
        };
        assert!(
            acc(&updated) >= 95,
            "incremental update learned only {}/100",
            acc(&updated)
        );
    }
}
