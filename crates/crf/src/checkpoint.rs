//! SGD checkpoint files (`.pgnc`, container kind `checkpoint`).
//!
//! A checkpoint serialises a [`TrainState`] — the exact loop state of
//! [`crate::train_resumable`]: epoch and position, the epoch's shuffle
//! order, the raw RNG state, the live bucket weights and the
//! epoch-average accumulators, plus a fingerprint of the corpus and
//! hyper-parameters the run was started with (resume refuses a
//! mismatch). Floats travel as raw IEEE bits, entries in canonical
//! sorted order, so encoding is byte-stable and a resumed run replays
//! the remaining updates bit-for-bit.
//!
//! The file reuses the `.pgnc` container of [`crate::artifact`] —
//! magic, versioned checksummed section table — with the header kind
//! tag set to [`artifact::KIND_CHECKPOINT`] so checkpoints are never
//! mistaken for models. Decoding trusts nothing and never panics on
//! truncated or bit-flipped input.

use crate::artifact::{
    self, decode_u32s, decode_u64s, encode_u32s, encode_u64s, kind_name, Quant, Reader, Writer,
    KIND_CHECKPOINT, SEC_CK_META, SEC_CK_ORDER, SEC_CK_PAIR, SEC_CK_PAIR_SUM, SEC_CK_UNARY,
    SEC_CK_UNARY_SUM,
};
use crate::train::{TrainFingerprint, TrainState};
use pigeon_telemetry as telemetry;
use std::time::Instant;

/// Number of `u64` scalars in the `ck-meta` section.
const META_LEN: usize = 17;

/// Registers the checkpoint metric families (histograms + counter) on
/// the current telemetry sink, so rendered metric families are stable
/// whether or not a checkpoint was ever written.
pub fn register_metrics() {
    telemetry::describe(
        "pigeon_checkpoint_save_micros",
        "Time to serialise one SGD checkpoint, microseconds",
    );
    telemetry::describe(
        "pigeon_checkpoint_load_micros",
        "Time to decode and validate one SGD checkpoint, microseconds",
    );
    telemetry::describe("pigeon_checkpoints_total", "SGD checkpoints written");
    telemetry::histogram(
        "pigeon_checkpoint_save_micros",
        &[],
        telemetry::PHASE_BOUNDS,
    );
    telemetry::histogram(
        "pigeon_checkpoint_load_micros",
        &[],
        telemetry::PHASE_BOUNDS,
    );
    telemetry::counter("pigeon_checkpoints_total");
}

/// Serialises `state` as a checkpoint container. Byte-stable: the same
/// state always encodes to the same bytes.
pub fn encode_checkpoint(state: &TrainState) -> Vec<u8> {
    let start = Instant::now();
    let _span = telemetry::span("checkpoint_save");
    let fp = &state.fingerprint;
    let meta: [u64; META_LEN] = [
        state.epoch as u64,
        state.pos as u64,
        u64::from(state.shuffled),
        state.rng[0],
        state.rng[1],
        state.rng[2],
        state.rng[3],
        fp.num_instances,
        u64::from(fp.num_labels),
        fp.epochs,
        u64::from(fp.learning_rate.to_bits()),
        fp.max_passes,
        fp.max_candidates,
        fp.global_candidates,
        fp.suggestions_per_key,
        u64::from(fp.use_unary),
        fp.seed,
    ];

    let mut w = Writer::new();
    w.section(SEC_CK_META, encode_u64s(&meta));
    w.section(SEC_CK_ORDER, encode_u32s(&state.order));
    w.section(SEC_CK_PAIR, encode_weight_entries(&state.pair));
    w.section(SEC_CK_UNARY, encode_weight_entries(&state.unary));
    let mut pair_sum = Vec::with_capacity(state.pair_sum.len() * 24);
    for &(path, a, b, sum) in &state.pair_sum {
        pair_sum.extend_from_slice(&path.to_le_bytes());
        pair_sum.extend_from_slice(&a.to_le_bytes());
        pair_sum.extend_from_slice(&b.to_le_bytes());
        pair_sum.extend_from_slice(&0u32.to_le_bytes());
        pair_sum.extend_from_slice(&sum.to_bits().to_le_bytes());
    }
    w.section(SEC_CK_PAIR_SUM, pair_sum);
    let mut unary_sum = Vec::with_capacity(state.unary_sum.len() * 16);
    for &(path, label, sum) in &state.unary_sum {
        unary_sum.extend_from_slice(&path.to_le_bytes());
        unary_sum.extend_from_slice(&label.to_le_bytes());
        unary_sum.extend_from_slice(&sum.to_bits().to_le_bytes());
    }
    w.section(SEC_CK_UNARY_SUM, unary_sum);
    let out = w.finish_kind(Quant::F32, KIND_CHECKPOINT);

    telemetry::observe(
        "pigeon_checkpoint_save_micros",
        &[],
        start.elapsed().as_micros() as u64,
    );
    telemetry::count("pigeon_checkpoints_total", 1);
    out
}

/// Decodes and fully validates a checkpoint container.
///
/// # Errors
///
/// A message naming the first problem found — container level
/// (magic/version/bounds/checksums), wrong kind, malformed section, or
/// inconsistent state (order not a permutation, out-of-range position,
/// non-finite or unsorted weights). Never panics on arbitrary input.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<TrainState, String> {
    let start = Instant::now();
    let _span = telemetry::span("checkpoint_load");
    let r = Reader::parse(bytes)?;
    if r.kind() != KIND_CHECKPOINT {
        return Err(format!(
            "container holds a {} (kind {}), not a training checkpoint",
            kind_name(r.kind()),
            r.kind()
        ));
    }

    let meta = decode_u64s(r.section(SEC_CK_META)?, "ck-meta")?;
    let meta: [u64; META_LEN] = meta
        .try_into()
        .map_err(|_| format!("ck-meta must hold exactly {META_LEN} values"))?;
    let [epoch, pos, shuffled, rng0, rng1, rng2, rng3, num_instances, num_labels, epochs, lr_bits, max_passes, max_candidates, global_candidates, suggestions_per_key, use_unary, seed] =
        meta;
    for (flag, what) in [(shuffled, "shuffled"), (use_unary, "use_unary")] {
        if flag > 1 {
            return Err(format!("ck-meta {what} flag is {flag}, expected 0 or 1"));
        }
    }
    let num_labels =
        u32::try_from(num_labels).map_err(|_| "ck-meta label count overflows u32".to_owned())?;
    let learning_rate = f32::from_bits(
        u32::try_from(lr_bits).map_err(|_| "ck-meta learning rate overflows f32".to_owned())?,
    );
    if !learning_rate.is_finite() {
        return Err("ck-meta learning rate is not finite".into());
    }
    if epoch > epochs {
        return Err(format!(
            "ck-meta epoch {epoch} exceeds the {epochs}-epoch run"
        ));
    }

    let order = decode_u32s(r.section(SEC_CK_ORDER)?, "ck-order")?;
    if order.len() as u64 != num_instances {
        return Err(format!(
            "ck-order holds {} instances but the fingerprint says {num_instances}",
            order.len()
        ));
    }
    if pos > order.len() as u64 {
        return Err(format!(
            "ck-meta position {pos} exceeds the {}-instance epoch",
            order.len()
        ));
    }
    let mut seen = vec![false; order.len()];
    for &i in &order {
        let slot = seen
            .get_mut(i as usize)
            .ok_or_else(|| format!("ck-order instance {i} out of range {}", order.len()))?;
        if std::mem::replace(slot, true) {
            return Err(format!("ck-order visits instance {i} twice"));
        }
    }

    let pair = decode_weight_entries(r.section(SEC_CK_PAIR)?, "ck-pair")?;
    let unary = decode_weight_entries(r.section(SEC_CK_UNARY)?, "ck-unary")?;

    let raw = r.section(SEC_CK_PAIR_SUM)?;
    if !raw.len().is_multiple_of(24) {
        return Err(format!(
            "ck-pair-sum section length {} is not a multiple of 24",
            raw.len()
        ));
    }
    let mut pair_sum = Vec::with_capacity(raw.len() / 24);
    for c in raw.chunks_exact(24) {
        let path = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let a = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        let b = u32::from_le_bytes([c[8], c[9], c[10], c[11]]);
        let sum = f64::from_bits(u64::from_le_bytes([
            c[16], c[17], c[18], c[19], c[20], c[21], c[22], c[23],
        ]));
        if !sum.is_finite() {
            return Err("ck-pair-sum holds a non-finite sum".into());
        }
        if let Some(&(pp, pa, pb, _)) = pair_sum.last() {
            if (pp, pa, pb) >= (path, a, b) {
                return Err("ck-pair-sum entries are not strictly sorted".into());
            }
        }
        pair_sum.push((path, a, b, sum));
    }

    let raw = r.section(SEC_CK_UNARY_SUM)?;
    if !raw.len().is_multiple_of(16) {
        return Err(format!(
            "ck-unary-sum section length {} is not a multiple of 16",
            raw.len()
        ));
    }
    let mut unary_sum = Vec::with_capacity(raw.len() / 16);
    for c in raw.chunks_exact(16) {
        let path = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let label = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        let sum = f64::from_bits(u64::from_le_bytes([
            c[8], c[9], c[10], c[11], c[12], c[13], c[14], c[15],
        ]));
        if !sum.is_finite() {
            return Err("ck-unary-sum holds a non-finite sum".into());
        }
        if let Some(&(pp, pl, _)) = unary_sum.last() {
            if (pp, pl) >= (path, label) {
                return Err("ck-unary-sum entries are not strictly sorted".into());
            }
        }
        unary_sum.push((path, label, sum));
    }

    let state = TrainState {
        epoch: epoch as usize,
        pos: pos as usize,
        shuffled: shuffled == 1,
        order,
        rng: [rng0, rng1, rng2, rng3],
        pair,
        unary,
        pair_sum,
        unary_sum,
        fingerprint: TrainFingerprint {
            num_instances,
            num_labels,
            epochs,
            learning_rate,
            max_passes,
            max_candidates,
            global_candidates,
            suggestions_per_key,
            use_unary: use_unary == 1,
            seed,
        },
    };
    telemetry::observe(
        "pigeon_checkpoint_load_micros",
        &[],
        start.elapsed().as_micros() as u64,
    );
    Ok(state)
}

/// `true` when `bytes` is a `.pgnc` container of checkpoint kind (the
/// dispatch sniff; full validation is [`decode_checkpoint`]).
pub fn is_checkpoint(bytes: &[u8]) -> bool {
    artifact::container_kind(bytes) == Some(KIND_CHECKPOINT)
}

fn encode_weight_entries(entries: &[(u32, u64, f32)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * 16);
    for &(path, key, w) in entries {
        out.extend_from_slice(&path.to_le_bytes());
        out.extend_from_slice(&w.to_bits().to_le_bytes());
        out.extend_from_slice(&key.to_le_bytes());
    }
    out
}

fn decode_weight_entries(bytes: &[u8], what: &str) -> Result<Vec<(u32, u64, f32)>, String> {
    if !bytes.len().is_multiple_of(16) {
        return Err(format!(
            "{what} section length {} is not a multiple of 16",
            bytes.len()
        ));
    }
    let mut out = Vec::with_capacity(bytes.len() / 16);
    for c in bytes.chunks_exact(16) {
        let path = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let w = f32::from_bits(u32::from_le_bytes([c[4], c[5], c[6], c[7]]));
        let key = u64::from_le_bytes([c[8], c[9], c[10], c[11], c[12], c[13], c[14], c[15]]);
        if !w.is_finite() {
            return Err(format!("{what} holds a non-finite weight"));
        }
        if let Some(&(pp, pk, _)) = out.last() {
            if (pp, pk) >= (path, key) {
                return Err(format!("{what} entries are not strictly sorted"));
            }
        }
        out.push((path, key, w));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_resumable, CrfConfig, TrainControl, TrainOutcome};
    use crate::{Instance, Node};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn world(n: usize, seed: u64) -> Vec<Instance> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let path = rng.gen_range(0..12u32);
                let mut inst =
                    Instance::new(vec![Node::unknown(path % 4), Node::known(4 + path % 3)]);
                inst.add_pair(0, 1, path);
                inst.add_unary(0, path % 5);
                inst
            })
            .collect()
    }

    fn mid_epoch_state(instances: &[Instance]) -> TrainState {
        let calls = std::cell::Cell::new(0usize);
        let stop = move || {
            calls.set(calls.get() + 1);
            calls.get() > 150
        };
        match train_resumable(
            instances,
            7,
            &CrfConfig::default(),
            TrainControl {
                interrupt: Some(&stop),
                ..TrainControl::default()
            },
        )
        .unwrap()
        {
            TrainOutcome::Interrupted(state) => *state,
            TrainOutcome::Completed(_) => panic!("interrupt never fired"),
        }
    }

    #[test]
    fn round_trip_is_exact_and_byte_stable() {
        let state = mid_epoch_state(&world(90, 7));
        let bytes = encode_checkpoint(&state);
        assert!(is_checkpoint(&bytes));
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(encode_checkpoint(&back), bytes);
        // Resuming from the decoded state matches the uninterrupted run.
        let corpus = world(90, 7);
        let baseline = crate::train(&corpus, 7, &CrfConfig::default());
        let resumed = match train_resumable(
            &corpus,
            7,
            &CrfConfig::default(),
            TrainControl {
                resume: Some(back),
                ..TrainControl::default()
            },
        )
        .unwrap()
        {
            TrainOutcome::Completed(m) => *m,
            TrainOutcome::Interrupted(_) => panic!("no interrupt installed"),
        };
        assert_eq!(baseline.to_json().unwrap(), resumed.to_json().unwrap());
    }

    #[test]
    fn model_readers_reject_checkpoints_and_vice_versa() {
        let bytes = encode_checkpoint(&mid_epoch_state(&world(40, 9)));
        let err = crate::artifact::read_artifact(&bytes).unwrap_err();
        assert!(err.contains("checkpoint"), "unexpected error: {err}");
        let model = crate::train(&world(40, 9), 7, &CrfConfig::default());
        // A model artifact is not a checkpoint.
        let vocab: Vec<String> = (0..7).map(|i| format!("l{i}")).collect();
        let feats: Vec<String> = (0..12).map(|i| format!("f{i}")).collect();
        let meta = crate::artifact::ArtifactMeta {
            language: "JavaScript".into(),
            target: "variable".into(),
            abstraction: "full".into(),
            max_length: 4,
            max_width: 3,
            semi_paths: false,
            top_k: 8,
            dataflow_contexts: false,
        };
        let art =
            crate::artifact::write_artifact(&meta, &vocab, &feats, &model, Quant::F32).unwrap();
        let err = decode_checkpoint(&art).unwrap_err();
        assert!(err.contains("model"), "unexpected error: {err}");
    }

    #[test]
    fn corruption_is_a_coded_error_never_a_panic() {
        let bytes = encode_checkpoint(&mid_epoch_state(&world(60, 11)));
        // Truncations at every boundary-ish length.
        for len in [0, 3, 16, 31, 32, 63, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_checkpoint(&bytes[..len]).is_err(), "len {len}");
        }
        // Single-byte flips across the whole file.
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode_checkpoint(&bad).is_err(), "flip at {i}");
        }
    }
}
