//! The weight store, MAP inference, and top-k suggestion.

use crate::compiled::CompiledCrf;
use crate::instance::{Instance, NodeAdjacency};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// One borrowed candidate-table entry:
/// `((path, other_label, side), suggestions)` — see
/// [`CrfModel::candidate_entries`].
pub type CandidateEntryRef<'a> = ((u32, u32, u8), &'a [(u32, u32)]);

/// Upper bound on `max_candidates` accepted from any serialised model
/// (JSON or binary artifact). Trained models sit around a few dozen;
/// anything near this bound is a corrupted or hostile file, and
/// rejecting it at load time keeps a flipped length field from driving
/// pathological candidate buffers downstream.
pub const MAX_CANDIDATES_BOUND: usize = 1 << 20;

/// Upper bound on `max_passes` accepted from any serialised model —
/// same rationale as [`MAX_CANDIDATES_BOUND`], but for sweep count
/// (CPU) rather than buffer size.
pub const MAX_PASSES_BOUND: usize = 1 << 20;

/// One failed [`CrfModel::validate`] check: a stable machine-readable
/// code (reused verbatim as the `pigeon audit` diagnostic code) plus a
/// human-readable message naming the first offending entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelIssue {
    /// Stable code: `model-id-range`, `model-nonfinite-weight`,
    /// `model-empty-candidates` or `model-caps`.
    pub code: &'static str,
    /// Human-readable description naming the first offender found.
    pub message: String,
}

impl ModelIssue {
    fn new(code: &'static str, message: impl Into<String>) -> Self {
        ModelIssue {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ModelIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.code)
    }
}

/// Feature weights and label statistics of a trained CRF.
///
/// Scores are linear: the score of a joint assignment `y` is
/// `Σ w[(path, y_a, y_b)]` over pairwise factors plus
/// `Σ w[(path, y_a)]` over unary factors — Eq. 1 of the paper in log
/// space, restricted to MAP queries (the partition function is never
/// needed for prediction, matching Nice2Predict).
#[derive(Debug, Default)]
pub struct CrfModel {
    /// Pairwise feature weights keyed by `(path, label_a, label_b)`.
    pub(crate) pair_weights: HashMap<(u32, u32, u32), f32>,
    /// Unary feature weights keyed by `(path, label)`.
    pub(crate) unary_weights: HashMap<(u32, u32), f32>,
    /// Training-corpus frequency of each label (smoothing prior and
    /// global candidate source).
    pub(crate) label_counts: Vec<u32>,
    /// Candidate suggestions: `(path, other_label, side)` observed with
    /// each gold label. `side` is 0 when the unknown is the factor's
    /// `a` end, 1 when it is the `b` end.
    pub(crate) candidates: HashMap<(u32, u32, u8), Vec<(u32, u32)>>,
    /// Global fallback candidates (most frequent labels, descending).
    pub(crate) global_candidates: Vec<u32>,
    /// Maximum candidates considered per node during inference.
    pub(crate) max_candidates: usize,
    /// ICM sweeps per inference call.
    pub(crate) max_passes: usize,
    /// Lazily built compiled form of the model (see [`crate::compiled`]):
    /// indexed weights and candidate tables that every `predict` runs on.
    /// Built on first use; prediction threads share the one instance.
    /// Invariant: the hash-map tables above are never mutated after the
    /// cache is populated (the crate only mutates them during training
    /// and deserialisation, both of which build fresh models).
    pub(crate) compiled: OnceLock<CompiledCrf>,
    /// A compiled engine loaded directly from a binary artifact (see
    /// [`crate::artifact`]). When set, the hash-map tables above hold no
    /// weights — the artifact ships only the CSR form — and every
    /// prediction runs on this engine. `Arc` so clones share it: unlike
    /// the lazily derived cache, it cannot be re-derived from the (empty)
    /// tables.
    pub(crate) frozen: Option<Arc<CompiledCrf>>,
}

impl Clone for CrfModel {
    fn clone(&self) -> Self {
        // The compiled cache is intentionally dropped: re-deriving it on
        // first use is cheap and can never go stale against the clone's
        // own tables. The artifact-backed engine, by contrast, *is* the
        // weight store, so clones share it.
        CrfModel {
            pair_weights: self.pair_weights.clone(),
            unary_weights: self.unary_weights.clone(),
            label_counts: self.label_counts.clone(),
            candidates: self.candidates.clone(),
            global_candidates: self.global_candidates.clone(),
            max_candidates: self.max_candidates,
            max_passes: self.max_passes,
            compiled: OnceLock::new(),
            frozen: self.frozen.clone(),
        }
    }
}

impl CrfModel {
    /// The compiled engine for this model: the artifact-loaded engine
    /// when this model came from a binary artifact, otherwise built on
    /// first use from the hash-map tables.
    pub(crate) fn compiled(&self) -> &CompiledCrf {
        if let Some(frozen) = &self.frozen {
            return frozen;
        }
        self.compiled.get_or_init(|| self.compile())
    }

    /// Whether this model was loaded from a compiled binary artifact and
    /// therefore carries only the CSR engine, not the editable hash-map
    /// tables (JSON re-serialisation is impossible for such a model).
    pub fn is_artifact_backed(&self) -> bool {
        self.frozen.is_some()
    }

    /// Number of distinct pairwise features with non-zero weight.
    pub fn num_pair_features(&self) -> usize {
        match &self.frozen {
            Some(f) => f.weights.pair.keys.len(),
            None => self.pair_weights.len(),
        }
    }

    /// Checks that a deserialised model is safe to run inference on:
    /// every feature and label id fits the given vocabulary sizes (so
    /// `predict` can never index past the vocabularies the model shipped
    /// with), every weight is finite (a single `inf` poisons every score
    /// it touches), no candidate entry carries an empty suggestion list,
    /// and the inference caps are sane.
    ///
    /// # Errors
    ///
    /// Returns the first [`ModelIssue`] found; its `code` names the
    /// failure shape and its message the first offending entry.
    pub fn validate(&self, num_features: usize, num_labels: usize) -> Result<(), ModelIssue> {
        let nf = num_features as u32;
        let nl = num_labels as u32;
        let feature = |what: &str, id: u32| {
            (id < nf).then_some(()).ok_or_else(|| {
                ModelIssue::new(
                    "model-id-range",
                    format!(
                        "{what} references feature id {id}, but the feature vocabulary \
                         has {num_features} entries"
                    ),
                )
            })
        };
        let label = |what: &str, id: u32| {
            (id < nl).then_some(()).ok_or_else(|| {
                ModelIssue::new(
                    "model-id-range",
                    format!(
                        "{what} references label id {id}, but the label vocabulary \
                         has {num_labels} entries"
                    ),
                )
            })
        };
        let finite = |what: &str, key: String, w: f32| {
            w.is_finite().then_some(()).ok_or_else(|| {
                ModelIssue::new(
                    "model-nonfinite-weight",
                    format!("{what} {key} carries non-finite weight {w}"),
                )
            })
        };
        if self.label_counts.len() != num_labels {
            return Err(ModelIssue::new(
                "model-id-range",
                format!(
                    "label-count table has {} entries, but the label vocabulary \
                     has {num_labels}",
                    self.label_counts.len()
                ),
            ));
        }
        if self.max_candidates > MAX_CANDIDATES_BOUND {
            return Err(ModelIssue::new(
                "model-caps",
                format!(
                    "max_candidates is {}, above the bound of {MAX_CANDIDATES_BOUND}",
                    self.max_candidates
                ),
            ));
        }
        if self.max_passes > MAX_PASSES_BOUND {
            return Err(ModelIssue::new(
                "model-caps",
                format!(
                    "max_passes is {}, above the bound of {MAX_PASSES_BOUND}",
                    self.max_passes
                ),
            ));
        }
        for (&(path, la, lb), &w) in &self.pair_weights {
            feature("pairwise weight", path)?;
            label("pairwise weight", la)?;
            label("pairwise weight", lb)?;
            finite(
                "pairwise weight",
                format!("(path {path}, labels {la}/{lb})"),
                w,
            )?;
        }
        for (&(path, l), &w) in &self.unary_weights {
            feature("unary weight", path)?;
            label("unary weight", l)?;
            finite("unary weight", format!("(path {path}, label {l})"), w)?;
        }
        for (&(path, other, side), suggested) in &self.candidates {
            feature("candidate table", path)?;
            label("candidate table", other)?;
            if suggested.is_empty() {
                return Err(ModelIssue::new(
                    "model-empty-candidates",
                    format!(
                        "candidate entry (path {path}, label {other}, side {side}) \
                         carries no suggestions"
                    ),
                ));
            }
            for &(l, _) in suggested {
                label("candidate suggestion", l)?;
            }
        }
        for &l in &self.global_candidates {
            label("global candidate list", l)?;
        }
        Ok(())
    }

    /// Number of distinct unary features with non-zero weight.
    pub fn num_unary_features(&self) -> usize {
        match &self.frozen {
            Some(f) => f.weights.unary.keys.len(),
            None => self.unary_weights.len(),
        }
    }

    /// Read-only view of every pairwise weight as
    /// `(path, label_a, label_b, weight)` — hash-map order for trained
    /// or JSON-loaded models, packed (sorted) order for artifact-backed
    /// ones. For audit tooling; iteration never builds the compiled
    /// cache.
    pub fn pair_weight_entries(&self) -> impl Iterator<Item = (u32, u32, u32, f32)> + '_ {
        let from_map = self
            .pair_weights
            .iter()
            .map(|(&(p, a, b), &w)| (p, a, b, w));
        // Exactly one of the two sources is populated: artifact-backed
        // models keep their hash maps empty.
        let from_frozen = self
            .frozen
            .as_deref()
            .into_iter()
            .flat_map(|f| f.weights.pair.iter_entries())
            .map(|(p, key, w)| (p, (key >> 32) as u32, key as u32, w));
        from_map.chain(from_frozen)
    }

    /// Read-only view of every unary weight as `(path, label, weight)`;
    /// same ordering contract as [`CrfModel::pair_weight_entries`].
    pub fn unary_weight_entries(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        let from_map = self.unary_weights.iter().map(|(&(p, l), &w)| (p, l, w));
        let from_frozen = self
            .frozen
            .as_deref()
            .into_iter()
            .flat_map(|f| f.weights.unary.iter_entries())
            .map(|(p, key, w)| (p, key as u32, w));
        from_map.chain(from_frozen)
    }

    /// The per-label training-frequency table (indexed by label id).
    pub fn label_count_table(&self) -> &[u32] {
        &self.label_counts
    }

    /// Read-only view of the candidate tables: each entry is
    /// `((path, other_label, side), suggestions)` where suggestions are
    /// `(label, co-occurrence count)` pairs.
    pub fn candidate_entries(&self) -> impl Iterator<Item = CandidateEntryRef<'_>> {
        self.candidates.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// The global fallback candidate labels, most frequent first.
    pub fn global_candidate_labels(&self) -> &[u32] {
        &self.global_candidates
    }

    /// Maximum candidates considered per node during inference.
    pub fn max_candidates(&self) -> usize {
        self.max_candidates
    }

    fn pair_w(&self, path: u32, la: u32, lb: u32) -> f32 {
        self.pair_weights
            .get(&(path, la, lb))
            .copied()
            .unwrap_or(0.0)
    }

    fn unary_w(&self, path: u32, l: u32) -> f32 {
        self.unary_weights.get(&(path, l)).copied().unwrap_or(0.0)
    }

    /// A small tie-break prior favouring frequent labels.
    fn prior(&self, label: u32) -> f32 {
        let c = self.label_counts.get(label as usize).copied().unwrap_or(0);
        1e-3 * (1.0 + f32::ln(1.0 + c as f32))
    }

    /// The candidate label set for one unknown node: per-factor
    /// suggestions from training co-occurrence, then global frequent
    /// labels, capped at `max_candidates`.
    pub(crate) fn node_candidates(
        &self,
        inst: &Instance,
        adj: &[NodeAdjacency],
        labels: &[u32],
        node: usize,
    ) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        let push = |l: u32, out: &mut Vec<u32>| {
            if !out.contains(&l) && out.len() < self.max_candidates {
                out.push(l);
            }
        };
        for &f in &adj[node].pairwise {
            let pf = inst.pairwise[f];
            let (other, side) = if pf.a == node {
                (pf.b, 0u8)
            } else {
                (pf.a, 1u8)
            };
            let other_label = labels[other];
            if let Some(suggested) = self.candidates.get(&(pf.path, other_label, side)) {
                for &(l, _) in suggested {
                    push(l, &mut out);
                }
            }
        }
        for &l in &self.global_candidates {
            push(l, &mut out);
        }
        out
    }

    /// The score of assigning `label` to `node` with every other node
    /// held at `labels`. `loss_augment` adds a unit margin against the
    /// gold label (loss-augmented inference for max-margin training).
    pub(crate) fn node_score(
        &self,
        inst: &Instance,
        adj: &[NodeAdjacency],
        labels: &[u32],
        node: usize,
        label: u32,
        loss_augment: bool,
    ) -> f32 {
        let mut s = self.prior(label);
        for &f in &adj[node].pairwise {
            let pf = inst.pairwise[f];
            s += if pf.a == node {
                self.pair_w(pf.path, label, labels[pf.b])
            } else {
                self.pair_w(pf.path, labels[pf.a], label)
            };
        }
        for &f in &adj[node].unary {
            s += self.unary_w(inst.unary[f].path, label);
        }
        if loss_augment && label != inst.nodes[node].label {
            s += 1.0;
        }
        s
    }

    /// MAP inference by iterated conditional modes over the candidate
    /// sets: initialise each unknown to its best unary+prior candidate,
    /// then sweep until a fixpoint (or the sweep limit).
    ///
    /// Runs on the compiled engine (see [`crate::compiled`]); the result
    /// is bit-identical to the hash-map reference implementation, which
    /// [`CrfModel::predict_reference`] retains for the equivalence
    /// property tests.
    ///
    /// Returns the full label vector; known nodes keep their labels.
    pub fn predict(&self, inst: &Instance) -> Vec<u32> {
        self.compiled().infer(inst)
    }

    /// The pre-compilation hash-map inference path, kept as the oracle
    /// the compiled engine is property-tested against. Not for
    /// production use: it rebuilds adjacency and candidate vectors on
    /// every call.
    #[doc(hidden)]
    pub fn predict_reference(&self, inst: &Instance) -> Vec<u32> {
        self.infer_reference(inst, false)
    }

    /// Loss-augmented inference on the compiled engine — exposed so the
    /// equivalence property tests can drive the exact code path training
    /// runs.
    #[doc(hidden)]
    pub fn infer_compiled(&self, inst: &Instance, loss_augment: bool) -> Vec<u32> {
        let mut ws = crate::compiled::Workspace::new();
        self.compiled().infer_augmented(inst, loss_augment, &mut ws)
    }

    /// Reference loss-augmented inference — the oracle for the training
    /// path's equivalence tests.
    #[doc(hidden)]
    pub fn infer_reference(&self, inst: &Instance, loss_augment: bool) -> Vec<u32> {
        let adj = inst.adjacency();
        let mut labels: Vec<u32> = inst.nodes.iter().map(|n| n.label).collect();
        let unknowns = inst.unknown_nodes();

        // Blank out the unknowns first: their stored labels are gold (or a
        // caller sentinel) and must never influence inference.
        let blank = self.global_candidates.first().copied().unwrap_or(0);
        for &u in &unknowns {
            labels[u] = blank;
        }
        // Initialise unknowns ignoring each other: evidence-only pass.
        for &u in &unknowns {
            let cands = self.node_candidates(inst, &adj, &labels, u);
            labels[u] = self.argmax(inst, &adj, &labels, u, &cands, loss_augment);
        }
        // ICM sweeps.
        for _ in 0..self.max_passes {
            let mut changed = false;
            for &u in &unknowns {
                let cands = self.node_candidates(inst, &adj, &labels, u);
                let best = self.argmax(inst, &adj, &labels, u, &cands, loss_augment);
                if best != labels[u] {
                    labels[u] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        labels
    }

    fn argmax(
        &self,
        inst: &Instance,
        adj: &[NodeAdjacency],
        labels: &[u32],
        node: usize,
        candidates: &[u32],
        loss_augment: bool,
    ) -> u32 {
        let mut best = labels[node];
        let mut best_score = f32::NEG_INFINITY;
        for &c in candidates {
            let s = self.node_score(inst, adj, labels, node, c, loss_augment);
            if s > best_score {
                best_score = s;
                best = c;
            }
        }
        if candidates.is_empty() {
            // No evidence at all: the most frequent training label.
            best = self.global_candidates.first().copied().unwrap_or(0);
        }
        best
    }

    /// The top-`k` candidate labels for one unknown node, scored with all
    /// other nodes fixed at the MAP assignment — the paper's added
    /// "top-k candidates suggestion" API (§5.1).
    pub fn top_k(&self, inst: &Instance, node: usize, k: usize) -> Vec<(u32, f32)> {
        self.compiled().top_k(inst, node, k)
    }

    /// The total (unnormalised log-)score of a full assignment; exposed
    /// for tests and diagnostics.
    pub fn assignment_score(&self, inst: &Instance, labels: &[u32]) -> f32 {
        let mut s = 0.0;
        for pf in &inst.pairwise {
            s += self.pair_w(pf.path, labels[pf.a], labels[pf.b]);
        }
        for uf in &inst.unary {
            s += self.unary_w(uf.path, labels[uf.node]);
        }
        for (i, n) in inst.nodes.iter().enumerate() {
            if !n.known {
                s += self.prior(labels[i]);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Node;

    /// A hand-weighted model: path 0 strongly links label pairs (1,2) and
    /// (3,4); unary path 5 favours label 1.
    fn toy_model() -> CrfModel {
        let mut m = CrfModel {
            max_candidates: 8,
            max_passes: 4,
            ..CrfModel::default()
        };
        m.pair_weights.insert((0, 1, 2), 5.0);
        m.pair_weights.insert((0, 3, 4), 4.0);
        m.unary_weights.insert((5, 1), 2.0);
        m.label_counts = vec![1, 10, 10, 5, 5];
        m.global_candidates = vec![1, 2, 3, 4, 0];
        m
    }

    #[test]
    fn prediction_uses_pairwise_evidence() {
        let m = toy_model();
        let mut inst = Instance::new(vec![Node::unknown(1), Node::known(2)]);
        inst.add_pair(0, 1, 0);
        assert_eq!(
            m.predict(&inst)[0],
            1,
            "label 1 links to known 2 via path 0"
        );
    }

    #[test]
    fn prediction_uses_unary_evidence() {
        let m = toy_model();
        let mut inst = Instance::new(vec![Node::unknown(1)]);
        inst.add_unary(0, 5);
        assert_eq!(m.predict(&inst)[0], 1);
    }

    #[test]
    fn isolated_node_gets_most_frequent_label() {
        let m = toy_model();
        let inst = Instance::new(vec![Node::unknown(3)]);
        assert_eq!(m.predict(&inst)[0], 1, "global head candidate wins");
    }

    #[test]
    fn icm_never_decreases_the_objective() {
        let m = toy_model();
        let mut inst = Instance::new(vec![Node::unknown(1), Node::unknown(2), Node::known(2)]);
        inst.add_pair(0, 2, 0);
        inst.add_pair(0, 1, 0);
        inst.add_unary(1, 5);
        let init: Vec<u32> = inst.nodes.iter().map(|n| n.label).collect();
        let map = m.predict(&inst);
        assert!(m.assignment_score(&inst, &map) >= m.assignment_score(&inst, &init) - 1e-6);
    }

    #[test]
    fn top_k_ranks_by_score_and_contains_map() {
        let m = toy_model();
        let mut inst = Instance::new(vec![Node::unknown(1), Node::known(2)]);
        inst.add_pair(0, 1, 0);
        let top = m.top_k(&inst, 0, 3);
        assert_eq!(top[0].0, m.predict(&inst)[0]);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn inference_never_reads_gold_labels_of_unknowns() {
        // Two unknown nodes linked by a factor with a weight that would
        // reward agreeing with the *gold* label of the neighbour. If
        // inference leaked gold initialisations, node 0 would pick label 1
        // when B's gold is 2; with the leak fixed, predictions must be
        // identical whatever gold B carries.
        let mut m = toy_model();
        m.pair_weights.insert((9, 1, 2), 10.0);
        let mut with_gold_2 = Instance::new(vec![Node::unknown(0), Node::unknown(2)]);
        with_gold_2.add_pair(0, 1, 9);
        let mut with_gold_4 = Instance::new(vec![Node::unknown(0), Node::unknown(4)]);
        with_gold_4.add_pair(0, 1, 9);
        assert_eq!(m.predict(&with_gold_2), m.predict(&with_gold_4));
    }

    #[test]
    fn loss_augmentation_can_flip_a_weak_prediction() {
        let mut m = toy_model();
        // Weak preference (0.5) for gold label 1 on unary path 6.
        m.unary_weights.insert((6, 1), 0.5);
        let mut inst = Instance::new(vec![Node::unknown(1)]);
        inst.add_unary(0, 6);
        assert_eq!(m.infer_reference(&inst, false)[0], 1);
        // Under loss augmentation every non-gold label gains +1 > 0.5.
        assert_ne!(m.infer_reference(&inst, true)[0], 1);
    }
}
