//! CRF instances: the factor graph built from one program.
//!
//! The graph follows Nice2Predict (Raychev et al., POPL'15) as the paper
//! uses it: one node per program element, **pairwise factors** between
//! elements connected by a path-context, and the paper's added **unary
//! factors** from paths between different occurrences of the *same*
//! element (§5.1). Known elements (literals, API names, …) have fixed
//! labels and only serve as evidence; unknown elements are predicted
//! jointly by MAP inference.
//!
//! The crate is purely numeric: labels and paths arrive as dense `u32`
//! ids interned by the caller. This keeps the learner reusable across
//! tasks (names, method names, types) without threading vocabularies
//! through it.

/// One program element in the factor graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// For known nodes, the observed label. For unknown nodes, the gold
    /// label: consumed by the trainer, ignored (except for convenience
    /// comparisons by the caller) at prediction time.
    pub label: u32,
    /// Whether the label is given (evidence) rather than predicted.
    pub known: bool,
}

impl Node {
    /// An evidence node with a fixed label.
    pub fn known(label: u32) -> Self {
        Node { label, known: true }
    }

    /// A node to be predicted, carrying its gold label.
    pub fn unknown(gold: u32) -> Self {
        Node {
            label: gold,
            known: false,
        }
    }
}

/// A pairwise factor: elements `a` and `b` are related by an (abstracted)
/// path. Orientation is source order and is preserved end-to-end, so the
/// feature `(path, label_a, label_b)` is consistent between training and
/// inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairFactor {
    /// Index of the start element.
    pub a: usize,
    /// Index of the end element.
    pub b: usize,
    /// Dense id of the abstracted path connecting them.
    pub path: u32,
}

/// A unary factor: a path between two occurrences of one element, which
/// collapses to a single-node factor in the CRF because occurrences of an
/// identifier share a node (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnaryFactor {
    /// Index of the element.
    pub node: usize,
    /// Dense id of the abstracted self-path.
    pub path: u32,
}

/// A complete factor graph for one program.
#[derive(Debug, Clone, Default)]
pub struct Instance {
    /// The elements.
    pub nodes: Vec<Node>,
    /// Pairwise factors between elements.
    pub pairwise: Vec<PairFactor>,
    /// Unary factors on single elements.
    pub unary: Vec<UnaryFactor>,
}

impl Instance {
    /// A graph with the given nodes and no factors yet.
    pub fn new(nodes: Vec<Node>) -> Self {
        Instance {
            nodes,
            pairwise: Vec::new(),
            unary: Vec::new(),
        }
    }

    /// Adds a pairwise factor.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or `a == b` (use a unary
    /// factor for self-relations).
    pub fn add_pair(&mut self, a: usize, b: usize, path: u32) {
        assert!(
            a < self.nodes.len() && b < self.nodes.len(),
            "node out of range"
        );
        assert_ne!(a, b, "self-relations are unary factors");
        self.pairwise.push(PairFactor { a, b, path });
    }

    /// Adds a unary factor.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn add_unary(&mut self, node: usize, path: u32) {
        assert!(node < self.nodes.len(), "node out of range");
        self.unary.push(UnaryFactor { node, path });
    }

    /// Indices of the unknown (to-be-predicted) nodes.
    pub fn unknown_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.known)
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-node adjacency: for every node, the indices into `pairwise`
    /// and `unary` that touch it. Computed once per inference call.
    pub(crate) fn adjacency(&self) -> Vec<NodeAdjacency> {
        let mut adj = vec![NodeAdjacency::default(); self.nodes.len()];
        for (f, pf) in self.pairwise.iter().enumerate() {
            adj[pf.a].pairwise.push(f);
            adj[pf.b].pairwise.push(f);
        }
        for (f, uf) in self.unary.iter().enumerate() {
            adj[uf.node].unary.push(f);
        }
        adj
    }
}

#[derive(Debug, Clone, Default)]
pub(crate) struct NodeAdjacency {
    pub pairwise: Vec<usize>,
    pub unary: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_nodes_are_listed() {
        let inst = Instance::new(vec![Node::known(1), Node::unknown(2), Node::unknown(0)]);
        assert_eq!(inst.unknown_nodes(), vec![1, 2]);
    }

    #[test]
    fn adjacency_maps_factors_to_both_ends() {
        let mut inst = Instance::new(vec![Node::unknown(0), Node::known(1), Node::unknown(2)]);
        inst.add_pair(0, 1, 7);
        inst.add_pair(0, 2, 8);
        inst.add_unary(2, 9);
        let adj = inst.adjacency();
        assert_eq!(adj[0].pairwise, vec![0, 1]);
        assert_eq!(adj[1].pairwise, vec![0]);
        assert_eq!(adj[2].pairwise, vec![1]);
        assert_eq!(adj[2].unary, vec![0]);
    }

    #[test]
    #[should_panic(expected = "self-relations")]
    fn self_pair_panics() {
        let mut inst = Instance::new(vec![Node::unknown(0)]);
        inst.add_pair(0, 0, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut inst = Instance::new(vec![Node::unknown(0)]);
        inst.add_unary(3, 1);
    }
}
