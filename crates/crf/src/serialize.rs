//! Model persistence.
//!
//! Weights use tuple keys, which JSON objects cannot express directly, so
//! serialization goes through a flat mirror struct of entry vectors.

use crate::model::{CrfModel, MAX_CANDIDATES_BOUND, MAX_PASSES_BOUND};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One serialised pairwise weight: `(path, label_a, label_b, weight)`.
type PairEntry = (u32, u32, u32, f32);
/// One serialised unary weight: `(path, label, weight)`.
type UnaryEntry = (u32, u32, f32);
/// One serialised candidate row: `(path, other_label, side, suggestions)`.
type CandidateEntry = (u32, u32, u8, Vec<(u32, u32)>);

/// The on-disk form of a [`CrfModel`].
#[derive(Debug)]
struct ModelFile {
    pair_weights: Vec<PairEntry>,
    unary_weights: Vec<UnaryEntry>,
    label_counts: Vec<u32>,
    candidates: Vec<CandidateEntry>,
    global_candidates: Vec<u32>,
    max_candidates: usize,
    max_passes: usize,
}

// Hand-written (the vendored serde shim has no derive macro).
impl Serialize for ModelFile {
    fn to_value(&self) -> serde_json::Value {
        let mut map = serde_json::Map::new();
        map.insert("pair_weights".into(), self.pair_weights.to_value());
        map.insert("unary_weights".into(), self.unary_weights.to_value());
        map.insert("label_counts".into(), self.label_counts.to_value());
        map.insert("candidates".into(), self.candidates.to_value());
        map.insert(
            "global_candidates".into(),
            self.global_candidates.to_value(),
        );
        map.insert("max_candidates".into(), self.max_candidates.to_value());
        map.insert("max_passes".into(), self.max_passes.to_value());
        serde_json::Value::Object(map)
    }
}

impl Deserialize for ModelFile {
    fn from_value(value: &serde_json::Value) -> Result<Self, serde::Error> {
        fn field<T: Deserialize>(value: &serde_json::Value, key: &str) -> Result<T, serde::Error> {
            T::from_value(
                value
                    .get(key)
                    .ok_or_else(|| serde::Error::custom(format!("missing field `{key}`")))?,
            )
        }
        Ok(ModelFile {
            pair_weights: field(value, "pair_weights")?,
            unary_weights: field(value, "unary_weights")?,
            label_counts: field(value, "label_counts")?,
            candidates: field(value, "candidates")?,
            global_candidates: field(value, "global_candidates")?,
            max_candidates: field(value, "max_candidates")?,
            max_passes: field(value, "max_passes")?,
        })
    }
}

impl CrfModel {
    /// Serialises the model to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error (out-of-memory is the
    /// only realistic failure for this data shape).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        if self.is_artifact_backed() {
            // The binary artifact ships only the compiled CSR form; the
            // editable entry tables JSON mirrors no longer exist.
            return Err(serde::Error::custom(
                "model was loaded from a compiled binary artifact and cannot be \
                 re-serialised to JSON; keep the original JSON model file",
            ));
        }
        let mut pair_weights: Vec<PairEntry> = self
            .pair_weights
            .iter()
            .map(|(&(p, a, b), &w)| (p, a, b, w))
            .collect();
        pair_weights.sort_unstable_by_key(|&(p, a, b, _)| (p, a, b));
        let mut unary_weights: Vec<UnaryEntry> = self
            .unary_weights
            .iter()
            .map(|(&(p, l), &w)| (p, l, w))
            .collect();
        unary_weights.sort_unstable_by_key(|&(p, l, _)| (p, l));
        let mut candidates: Vec<CandidateEntry> = self
            .candidates
            .iter()
            .map(|(&(p, l, s), v)| (p, l, s, v.clone()))
            .collect();
        candidates.sort_unstable_by_key(|c| (c.0, c.1, c.2));
        serde_json::to_string(&ModelFile {
            pair_weights,
            unary_weights,
            label_counts: self.label_counts.clone(),
            candidates,
            global_candidates: self.global_candidates.clone(),
            max_candidates: self.max_candidates,
            max_passes: self.max_passes,
        })
    }

    /// Restores a model serialised by [`CrfModel::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the `serde_json` error on malformed input, on a duplicate
    /// weight or candidate key (silently keeping one of the weights
    /// would corrupt predictions), and on inference caps beyond the
    /// [`MAX_CANDIDATES_BOUND`]/[`MAX_PASSES_BOUND`] sanity bounds.
    pub fn from_json(json: &str) -> Result<CrfModel, serde_json::Error> {
        let file: ModelFile = serde_json::from_str(json)?;
        if file.max_candidates > MAX_CANDIDATES_BOUND {
            return Err(serde::Error::custom(format!(
                "max_candidates is {}, above the bound of {MAX_CANDIDATES_BOUND}",
                file.max_candidates
            )));
        }
        if file.max_passes > MAX_PASSES_BOUND {
            return Err(serde::Error::custom(format!(
                "max_passes is {}, above the bound of {MAX_PASSES_BOUND}",
                file.max_passes
            )));
        }
        let mut pair_weights = HashMap::with_capacity(file.pair_weights.len());
        for (p, a, b, w) in file.pair_weights {
            if pair_weights.insert((p, a, b), w).is_some() {
                return Err(serde::Error::custom(format!(
                    "duplicate pairwise weight entry (path {p}, labels {a}/{b}): \
                     keeping either weight would silently corrupt the model"
                )));
            }
        }
        let mut unary_weights = HashMap::with_capacity(file.unary_weights.len());
        for (p, l, w) in file.unary_weights {
            if unary_weights.insert((p, l), w).is_some() {
                return Err(serde::Error::custom(format!(
                    "duplicate unary weight entry (path {p}, label {l})"
                )));
            }
        }
        let mut candidates = HashMap::with_capacity(file.candidates.len());
        for (p, l, s, v) in file.candidates {
            if candidates.insert((p, l, s), v).is_some() {
                return Err(serde::Error::custom(format!(
                    "duplicate candidate entry (path {p}, label {l}, side {s})"
                )));
            }
        }
        Ok(CrfModel {
            pair_weights,
            unary_weights,
            label_counts: file.label_counts,
            candidates,
            global_candidates: file.global_candidates,
            max_candidates: file.max_candidates,
            max_passes: file.max_passes,
            compiled: Default::default(),
            frozen: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, Node};
    use crate::train::{train, CrfConfig};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn round_trip_preserves_predictions() {
        let mut rng = SmallRng::seed_from_u64(1);
        let instances: Vec<Instance> = (0..150)
            .map(|_| {
                let path = rng.gen_range(0..8u32);
                let mut inst =
                    Instance::new(vec![Node::unknown(path % 4), Node::known(4 + path % 2)]);
                inst.add_pair(0, 1, path);
                inst.add_unary(0, 100 + path);
                inst
            })
            .collect();
        let model = train(&instances, 6, &CrfConfig::default());
        let json = model.to_json().unwrap();
        let restored = CrfModel::from_json(&json).unwrap();
        for inst in &instances {
            assert_eq!(model.predict(inst), restored.predict(inst));
        }
        assert_eq!(model.num_pair_features(), restored.num_pair_features());
    }

    #[test]
    fn serialisation_is_stable() {
        let mut inst = Instance::new(vec![Node::unknown(0), Node::known(1)]);
        inst.add_pair(0, 1, 3);
        let model = train(&[inst], 2, &CrfConfig::default());
        assert_eq!(model.to_json().unwrap(), model.to_json().unwrap());
    }

    #[test]
    fn malformed_json_errors() {
        assert!(CrfModel::from_json("{not json").is_err());
    }
}
