//! Beam-search MAP inference.
//!
//! Nice2Predict's prediction explores candidate assignments with a beam;
//! this module provides the same alternative to the default iterated
//! conditional modes of [`CrfModel::predict`]. Unknown nodes are assigned
//! one at a time — most-constrained first — while the `width` best
//! partial assignments survive each step. Beam search can escape local
//! optima that a greedy sweep gets stuck in, at a cost linear in the
//! beam width.

use crate::compiled::Workspace;
use crate::instance::Instance;
use crate::model::CrfModel;

impl CrfModel {
    /// MAP inference by beam search with the given beam width.
    ///
    /// Runs on the compiled engine, like [`CrfModel::predict`]: scoring
    /// hits the indexed weights and the adjacency/candidate buffers come
    /// from a reused workspace, so widening the beam scales only the
    /// state cloning, not the lookup cost.
    ///
    /// Returns the full label vector, like [`CrfModel::predict`]. With
    /// `width = 1` this degenerates to a single greedy sequential
    /// assignment; larger widths keep alternatives alive across nodes.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn predict_beam(&self, inst: &Instance, width: usize) -> Vec<u32> {
        assert!(width > 0, "beam width must be positive");
        let eng = self.compiled();
        let mut ws = Workspace::new();
        eng.prepare(inst, &mut ws);
        let base: Vec<u32> = {
            // Start from the ICM solution's evidence-blanked baseline so
            // unknown slots carry a safe default while unassigned.
            let blank = eng.global_head();
            inst.nodes
                .iter()
                .map(|n| if n.known { n.label } else { blank })
                .collect()
        };

        // Most-constrained-first: nodes with more adjacent factors have
        // sharper scores and should commit earlier.
        let mut unknowns = inst.unknown_nodes();
        unknowns.sort_by_key(|&u| std::cmp::Reverse(eng.degree(&ws, u)));

        let mut beam: Vec<(Vec<u32>, f32)> = vec![(base, 0.0)];
        for &u in &unknowns {
            let mut next: Vec<(Vec<u32>, f32)> = Vec::new();
            for (labels, score) in &beam {
                let candidates = eng.node_candidates(inst, &mut ws, labels, u);
                let candidates = if candidates.is_empty() {
                    vec![eng.global_head()]
                } else {
                    candidates
                };
                for c in candidates {
                    let delta = eng.score(inst, &ws, labels, u, c);
                    let mut assigned = labels.clone();
                    assigned[u] = c;
                    next.push((assigned, score + delta));
                }
            }
            next.sort_by(|a, b| b.1.total_cmp(&a.1));
            next.truncate(width);
            beam = next;
        }

        // One ICM-style refinement sweep over the best state irons out
        // ordering artefacts.
        let (mut labels, _) = beam.into_iter().next().expect("beam is non-empty");
        for &u in &unknowns {
            let candidates = eng.node_candidates(inst, &mut ws, &labels, u);
            let mut best = labels[u];
            let mut best_score = f32::NEG_INFINITY;
            for c in candidates {
                let s = eng.score(inst, &ws, &labels, u, c);
                if s > best_score {
                    best_score = s;
                    best = c;
                }
            }
            labels[u] = best;
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Node;
    use crate::train::{train, CrfConfig};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn toy_world(n: usize, seed: u64) -> Vec<Instance> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let path = rng.gen_range(0..12u32);
                let mut inst = Instance::new(vec![
                    Node::unknown(path % 4),
                    Node::unknown(4 + path % 3),
                    Node::known(7 + path % 2),
                ]);
                inst.add_pair(0, 2, path);
                inst.add_pair(0, 1, 30 + path % 4);
                inst.add_unary(1, 60 + path);
                inst
            })
            .collect()
    }

    #[test]
    fn beam_matches_or_beats_icm_on_the_objective() {
        let train_set = toy_world(300, 1);
        let test_set = toy_world(80, 2);
        let model = train(&train_set, 9, &CrfConfig::default());
        let mut beam_wins = 0i32;
        for inst in &test_set {
            let icm = model.predict(inst);
            let beam = model.predict_beam(inst, 8);
            let s_icm = model.assignment_score(inst, &icm);
            let s_beam = model.assignment_score(inst, &beam);
            assert!(
                s_beam >= s_icm - 1e-4,
                "beam objective fell below ICM: {s_beam} < {s_icm}"
            );
            if s_beam > s_icm + 1e-4 {
                beam_wins += 1;
            }
        }
        // At minimum, beam never loses; usually it ties.
        assert!(beam_wins >= 0);
    }

    #[test]
    fn beam_respects_known_labels() {
        let train_set = toy_world(100, 3);
        let model = train(&train_set, 9, &CrfConfig::default());
        for inst in toy_world(20, 4) {
            let labels = model.predict_beam(&inst, 4);
            for (i, node) in inst.nodes.iter().enumerate() {
                if node.known {
                    assert_eq!(labels[i], node.label);
                }
            }
        }
    }

    #[test]
    fn width_one_is_greedy_but_valid() {
        let train_set = toy_world(100, 5);
        let model = train(&train_set, 9, &CrfConfig::default());
        let inst = &toy_world(1, 6)[0];
        let labels = model.predict_beam(inst, 1);
        assert_eq!(labels.len(), inst.nodes.len());
        assert!(labels.iter().all(|&l| l < 9));
    }

    #[test]
    #[should_panic(expected = "beam width must be positive")]
    fn zero_width_panics() {
        let model = train(&toy_world(10, 7), 9, &CrfConfig::default());
        let inst = &toy_world(1, 8)[0];
        let _ = model.predict_beam(inst, 0);
    }
}
