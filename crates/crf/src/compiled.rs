//! The compiled inference engine: indexed weights, a reusable inference
//! workspace, and sweep-exact delta-ICM.
//!
//! [`CrfModel`] keeps its weights in tuple-keyed hash maps — the right
//! shape for serialisation and for sparse updates, but the wrong shape
//! for the inference inner loop, where every score is a tuple-hash
//! lookup and every sweep reallocates candidate vectors. This module
//! freezes a model into an indexed, cache-friendly form:
//!
//! * **Packed weights** — `(path, lᵃ, lᵇ)` / `(path, l)` keys collapse to
//!   a `u64` per entry (`lᵃ << 32 | lᵇ`, resp. `l`), stored sorted in one
//!   flat array with a per-path offset index. A lookup is an O(1) offset
//!   fetch plus a binary search over that path's slice — no hashing, and
//!   the slice is contiguous in cache. Training uses the mutable sibling
//!   [`BucketWeights`] (per-path sorted buckets) so subgradient updates
//!   write back in O(bucket) instead of recompiling.
//! * **Packed candidates** — the `(path, other_label, side)` suggestion
//!   table compiles the same way, with suggestion lists materialised in
//!   one flat label array.
//! * **Workspace** — per-instance CSR adjacency, the candidate buffer and
//!   the label-dedup stamps live in a [`Workspace`] reused across
//!   `infer` calls; steady-state inference allocates nothing.
//! * **Delta-ICM** — after a node flips, only its factor-graph neighbours
//!   can change their best response, so sweeps re-score just the nodes
//!   marked dirty by a neighbour flip. The schedule still walks unknowns
//!   in the reference order and a clean node provably re-derives its
//!   current label, so the assignment trajectory — and therefore the
//!   trained model — is **bit-identical** to the reference sweeps
//!   (property-tested in `tests/prop_crf.rs`, pinned in
//!   `tests/golden_train.rs`).
//!
//! Candidate sets depend on the *current* labels of a node's neighbours,
//! so they cannot be frozen once per `infer` call without changing
//! results; instead the workspace materialises them into a reused buffer
//! with O(1) stamp dedup, eliminating the per-node-per-sweep allocation
//! and the O(k²) `contains` scan of the reference.

use crate::instance::Instance;
use crate::model::CrfModel;
use pigeon_telemetry as telemetry;
use std::cell::RefCell;
use std::collections::HashMap;

thread_local! {
    /// Per-thread inference scratch, so `CrfModel::predict(&self)` keeps
    /// its shared-reference signature (the serve path calls it from many
    /// threads) while still reusing buffers across calls.
    static TLS_WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Packs a pairwise label pair into one orderable key.
#[inline]
pub(crate) fn pair_key(la: u32, lb: u32) -> u64 {
    (u64::from(la) << 32) | u64::from(lb)
}

/// A weight store the ICM engine can score against. Implemented by the
/// frozen [`PackedWeights`] pair (prediction) and by [`BucketWeights`]
/// (training, where updates interleave with inference).
pub(crate) trait WeightStore {
    fn pair_w(&self, path: u32, la: u32, lb: u32) -> f32;
    fn unary_w(&self, path: u32, l: u32) -> f32;
}

/// Frozen weights for one factor arity: sorted `u64` keys in a flat
/// array, indexed by a per-path offset table.
#[derive(Debug, Clone, Default)]
pub(crate) struct PackedWeights {
    /// `offsets[p]..offsets[p + 1]` is path `p`'s slice of `keys`.
    pub(crate) offsets: Vec<u32>,
    /// Sorted within each path's slice.
    pub(crate) keys: Vec<u64>,
    /// Parallel to `keys`.
    pub(crate) weights: Vec<f32>,
}

impl PackedWeights {
    /// Builds the packed form from `(path, key, weight)` triples.
    fn build(mut entries: Vec<(u32, u64, f32)>, num_paths: usize) -> Self {
        entries.sort_unstable_by_key(|&(p, k, _)| (p, k));
        let mut offsets = vec![0u32; num_paths + 1];
        for &(p, _, _) in &entries {
            offsets[p as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        PackedWeights {
            offsets,
            keys: entries.iter().map(|&(_, k, _)| k).collect(),
            weights: entries.iter().map(|&(_, _, w)| w).collect(),
        }
    }

    #[inline]
    fn get(&self, path: u32, key: u64) -> f32 {
        let p = path as usize;
        if p + 1 >= self.offsets.len() {
            return 0.0;
        }
        let (s, e) = (self.offsets[p] as usize, self.offsets[p + 1] as usize);
        match self.keys[s..e].binary_search(&key) {
            Ok(i) => self.weights[s + i],
            Err(_) => 0.0,
        }
    }

    /// Visits every entry as `(path, key, weight)`, in packed (path,
    /// key-sorted) order — the artifact codec and frozen-aware audit
    /// accessors walk the CSR form through this.
    pub(crate) fn iter_entries(&self) -> impl Iterator<Item = (u32, u64, f32)> + '_ {
        (0..self.offsets.len().saturating_sub(1)).flat_map(move |p| {
            let (s, e) = (self.offsets[p] as usize, self.offsets[p + 1] as usize);
            (s..e).map(move |i| (p as u32, self.keys[i], self.weights[i]))
        })
    }
}

/// The frozen pair of weight tables predictions score against.
#[derive(Debug, Clone, Default)]
pub(crate) struct FrozenWeights {
    pub(crate) pair: PackedWeights,
    pub(crate) unary: PackedWeights,
}

impl WeightStore for FrozenWeights {
    #[inline]
    fn pair_w(&self, path: u32, la: u32, lb: u32) -> f32 {
        self.pair.get(path, pair_key(la, lb))
    }

    #[inline]
    fn unary_w(&self, path: u32, l: u32) -> f32 {
        self.unary.get(path, u64::from(l))
    }
}

/// Mutable indexed weights for the training loop: one sorted
/// `(key, weight)` bucket per path id. Lookups binary-search a small
/// contiguous bucket; subgradient write-back inserts in O(bucket size),
/// which stays cheap because features distribute across paths.
///
/// An entry, once inserted, is never removed even when its weight
/// returns to zero — matching the `entry().or_insert(0.0)` presence
/// semantics of the hash-map reference, which the epoch-averaging step
/// observes.
#[derive(Debug, Clone, Default)]
pub(crate) struct BucketWeights {
    buckets: Vec<Vec<(u64, f32)>>,
}

impl BucketWeights {
    pub(crate) fn new(num_paths: usize) -> Self {
        BucketWeights {
            buckets: vec![Vec::new(); num_paths],
        }
    }

    #[inline]
    fn get(&self, path: u32, key: u64) -> f32 {
        match self.buckets.get(path as usize) {
            Some(b) => match b.binary_search_by_key(&key, |&(k, _)| k) {
                Ok(i) => b[i].1,
                Err(_) => 0.0,
            },
            None => 0.0,
        }
    }

    /// Adds `delta` to the entry, inserting it (at zero) first when
    /// absent — the indexed equivalent of `entry().or_insert(0.0) += d`.
    pub(crate) fn add(&mut self, path: u32, key: u64, delta: f32) {
        let p = path as usize;
        if p >= self.buckets.len() {
            self.buckets.resize(p + 1, Vec::new());
        }
        let b = &mut self.buckets[p];
        match b.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => b[i].1 += delta,
            Err(i) => b.insert(i, (key, delta)),
        }
    }

    /// Visits every entry as `(path, key, weight)`.
    pub(crate) fn for_each(&self, mut f: impl FnMut(u32, u64, f32)) {
        for (p, b) in self.buckets.iter().enumerate() {
            for &(k, w) in b {
                f(p as u32, k, w);
            }
        }
    }
}

impl WeightStore for (BucketWeights, BucketWeights) {
    #[inline]
    fn pair_w(&self, path: u32, la: u32, lb: u32) -> f32 {
        self.0.get(path, pair_key(la, lb))
    }

    #[inline]
    fn unary_w(&self, path: u32, l: u32) -> f32 {
        self.1.get(path, u64::from(l))
    }
}

/// The compiled `(path, other_label, side)` → suggestions index: per-path
/// sorted entry slices pointing into one flat label array.
#[derive(Debug, Clone, Default)]
pub(crate) struct PackedCandidates {
    /// `offsets[p]..offsets[p + 1]` is path `p`'s slice of `entries`.
    pub(crate) offsets: Vec<u32>,
    /// `(other_label << 1 | side, start, len)`, sorted by key per path.
    pub(crate) entries: Vec<(u64, u32, u32)>,
    /// Suggested labels, in stored (frequency-ranked) order.
    pub(crate) labels: Vec<u32>,
}

/// The model's training-time candidate map: `(path, other_label, side)`
/// to frequency-ranked `(label, count)` suggestions.
type CandidateMap = HashMap<(u32, u32, u8), Vec<(u32, u32)>>;

/// One flattened candidate row: `(path, packed key, suggestions)`.
type CandidateRow<'a> = (u32, u64, &'a [(u32, u32)]);

impl PackedCandidates {
    fn build(map: &CandidateMap, num_paths: usize) -> Self {
        let mut rows: Vec<CandidateRow> = map
            .iter()
            .map(|(&(p, other, side), v)| {
                (p, (u64::from(other) << 1) | u64::from(side), v.as_slice())
            })
            .collect();
        rows.sort_unstable_by_key(|&(p, k, _)| (p, k));
        let mut offsets = vec![0u32; num_paths + 1];
        let mut entries = Vec::with_capacity(rows.len());
        let mut labels = Vec::new();
        for &(p, k, v) in &rows {
            offsets[p as usize + 1] += 1;
            entries.push((k, labels.len() as u32, v.len() as u32));
            labels.extend(v.iter().map(|&(l, _)| l));
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        PackedCandidates {
            offsets,
            entries,
            labels,
        }
    }

    #[inline]
    fn get(&self, path: u32, other_label: u32, side: u8) -> &[u32] {
        let p = path as usize;
        if p + 1 >= self.offsets.len() {
            return &[];
        }
        let (s, e) = (self.offsets[p] as usize, self.offsets[p + 1] as usize);
        let key = (u64::from(other_label) << 1) | u64::from(side);
        match self.entries[s..e].binary_search_by_key(&key, |&(k, _, _)| k) {
            Ok(i) => {
                let (_, start, len) = self.entries[s + i];
                &self.labels[start as usize..(start + len) as usize]
            }
            Err(_) => &[],
        }
    }
}

/// Everything about a model that stays frozen during inference *and*
/// during training: the candidate index, the precomputed label prior,
/// the global fallback candidates and the inference caps.
#[derive(Debug, Clone, Default)]
pub(crate) struct EngineShared {
    pub(crate) cands: PackedCandidates,
    /// `prior[l]` for every label slot the engine can ever score.
    pub(crate) prior: Vec<f32>,
    pub(crate) global_candidates: Vec<u32>,
    pub(crate) max_candidates: usize,
    pub(crate) max_passes: usize,
    /// Upper bound (exclusive) on label ids the candidate tables can
    /// produce; sizes the workspace dedup stamps.
    pub(crate) num_label_slots: usize,
}

/// A [`CrfModel`] frozen into the indexed form. Built once by
/// [`CrfModel::compile`] (cached behind the model) and shared by every
/// prediction thread.
#[derive(Debug, Clone, Default)]
pub struct CompiledCrf {
    pub(crate) shared: EngineShared,
    pub(crate) weights: FrozenWeights,
}

/// Builds the frozen, training-invariant part of the engine from a
/// model's statistics tables.
pub(crate) fn compile_shared(model: &CrfModel) -> EngineShared {
    let num_paths = 1 + model
        .candidates
        .keys()
        .map(|&(p, _, _)| p as usize)
        .max()
        .unwrap_or(0);
    let cands = PackedCandidates::build(&model.candidates, num_paths);
    shared_from_parts(
        cands,
        &model.label_counts,
        model.global_candidates.clone(),
        model.max_candidates,
        model.max_passes,
    )
}

/// Assembles an [`EngineShared`] from already-packed candidate tables —
/// shared between [`compile_shared`] and the binary-artifact loader so
/// both derive the prior and label-slot bound identically (the artifact
/// round-trip tests assert byte-identical predictions across the two).
pub(crate) fn shared_from_parts(
    cands: PackedCandidates,
    label_counts: &[u32],
    global_candidates: Vec<u32>,
    max_candidates: usize,
    max_passes: usize,
) -> EngineShared {
    // Label slots must cover every id inference can touch: the counted
    // labels, every suggestion and every global candidate (hand-built
    // models may exceed the count table).
    let mut slots = label_counts.len();
    for l in cands.labels.iter().chain(&global_candidates) {
        slots = slots.max(*l as usize + 1);
    }
    // The reference prior: out-of-range labels count as frequency zero.
    let prior = (0..slots)
        .map(|l| {
            let c = label_counts.get(l).copied().unwrap_or(0);
            1e-3 * (1.0 + f32::ln(1.0 + c as f32))
        })
        .collect();
    EngineShared {
        cands,
        prior,
        global_candidates,
        max_candidates,
        max_passes,
        num_label_slots: slots,
    }
}

impl CrfModel {
    /// Freezes the model's hash-map tables into the indexed
    /// [`CompiledCrf`] the inference engine runs on.
    pub fn compile(&self) -> CompiledCrf {
        let num_paths = 1 + self
            .pair_weights
            .keys()
            .map(|&(p, _, _)| p as usize)
            .chain(self.unary_weights.keys().map(|&(p, _)| p as usize))
            .chain(self.candidates.keys().map(|&(p, _, _)| p as usize))
            .max()
            .unwrap_or(0);
        let pair = PackedWeights::build(
            self.pair_weights
                .iter()
                .map(|(&(p, la, lb), &w)| (p, pair_key(la, lb), w))
                .collect(),
            num_paths,
        );
        let unary = PackedWeights::build(
            self.unary_weights
                .iter()
                .map(|(&(p, l), &w)| (p, u64::from(l), w))
                .collect(),
            num_paths,
        );
        CompiledCrf {
            shared: compile_shared(self),
            weights: FrozenWeights { pair, unary },
        }
    }
}

/// Per-instance scratch reused across [`infer`] calls: CSR adjacency,
/// the working label vector, dirty flags, the candidate buffer and the
/// label-dedup stamps. One workspace serves any number of sequential
/// inferences; nothing is reallocated once the high-water marks are
/// reached.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    labels: Vec<u32>,
    unknowns: Vec<u32>,
    /// CSR over pairwise factors: node `i` touches factor indices
    /// `pair_adj[pair_off[i]..pair_off[i + 1]]`, in factor order.
    pair_off: Vec<u32>,
    pair_adj: Vec<u32>,
    unary_off: Vec<u32>,
    unary_adj: Vec<u32>,
    /// Scratch cursor reused by the CSR fill.
    cursor: Vec<u32>,
    dirty: Vec<bool>,
    cand: Vec<u32>,
    /// `seen[l] == stamp` ⇔ label `l` is already in `cand`.
    seen: Vec<u32>,
    stamp: u32,
}

impl Workspace {
    /// A fresh workspace; buffers grow on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Rebuilds the per-instance state (adjacency, label vector, unknown
    /// list) for `inst`, reusing buffers.
    fn prepare(&mut self, inst: &Instance, num_label_slots: usize) {
        let n = inst.nodes.len();
        self.labels.clear();
        self.labels.extend(inst.nodes.iter().map(|nd| nd.label));
        self.unknowns.clear();
        self.unknowns.extend(
            inst.nodes
                .iter()
                .enumerate()
                .filter(|(_, nd)| !nd.known)
                .map(|(i, _)| i as u32),
        );

        // Degree count → prefix sum → fill, preserving factor order per
        // node (the reference adjacency pushes factors in index order).
        self.pair_off.clear();
        self.pair_off.resize(n + 1, 0);
        for pf in &inst.pairwise {
            self.pair_off[pf.a + 1] += 1;
            self.pair_off[pf.b + 1] += 1;
        }
        for i in 1..=n {
            self.pair_off[i] += self.pair_off[i - 1];
        }
        self.pair_adj.clear();
        self.pair_adj.resize(self.pair_off[n] as usize, 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.pair_off[..n]);
        for (f, pf) in inst.pairwise.iter().enumerate() {
            for end in [pf.a, pf.b] {
                self.pair_adj[self.cursor[end] as usize] = f as u32;
                self.cursor[end] += 1;
            }
        }

        self.unary_off.clear();
        self.unary_off.resize(n + 1, 0);
        for uf in &inst.unary {
            self.unary_off[uf.node + 1] += 1;
        }
        for i in 1..=n {
            self.unary_off[i] += self.unary_off[i - 1];
        }
        self.unary_adj.clear();
        self.unary_adj.resize(self.unary_off[n] as usize, 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.unary_off[..n]);
        for (f, uf) in inst.unary.iter().enumerate() {
            self.unary_adj[self.cursor[uf.node] as usize] = f as u32;
            self.cursor[uf.node] += 1;
        }

        self.dirty.clear();
        self.dirty.resize(n, false);
        if self.seen.len() < num_label_slots {
            self.seen.resize(num_label_slots, 0);
        }
    }

    #[inline]
    fn pair_factors(&self, node: usize) -> &[u32] {
        &self.pair_adj[self.pair_off[node] as usize..self.pair_off[node + 1] as usize]
    }

    #[inline]
    fn unary_factors(&self, node: usize) -> &[u32] {
        &self.unary_adj[self.unary_off[node] as usize..self.unary_off[node + 1] as usize]
    }
}

/// Materialises `node`'s candidate set into `ws.cand`, in the reference
/// order: per-factor suggestions (factor order, suggestion rank order),
/// then global candidates, deduplicated and capped at `max_candidates`.
fn collect_candidates(shared: &EngineShared, inst: &Instance, ws: &mut Workspace, node: usize) {
    ws.cand.clear();
    ws.stamp = ws.stamp.wrapping_add(1);
    if ws.stamp == 0 {
        // Stamp wrapped: old stamps could alias, so reset them all once.
        ws.seen.iter_mut().for_each(|s| *s = 0);
        ws.stamp = 1;
    }
    let cap = shared.max_candidates;
    for i in ws.pair_off[node] as usize..ws.pair_off[node + 1] as usize {
        let pf = inst.pairwise[ws.pair_adj[i] as usize];
        let (other, side) = if pf.a == node {
            (pf.b, 0u8)
        } else {
            (pf.a, 1u8)
        };
        let other_label = ws.labels[other];
        for &l in shared.cands.get(pf.path, other_label, side) {
            let slot = &mut ws.seen[l as usize];
            if *slot != ws.stamp && ws.cand.len() < cap {
                *slot = ws.stamp;
                ws.cand.push(l);
            }
        }
    }
    for &l in &shared.global_candidates {
        let slot = &mut ws.seen[l as usize];
        if *slot != ws.stamp && ws.cand.len() < cap {
            *slot = ws.stamp;
            ws.cand.push(l);
        }
    }
}

/// The score of assigning `label` to `node` with every other node held
/// at `ws.labels` — accumulation order matches the reference bit-for-bit
/// (prior, pairwise factors in adjacency order, unary factors, margin).
#[inline]
#[allow(clippy::too_many_arguments)]
fn node_score<W: WeightStore>(
    shared: &EngineShared,
    weights: &W,
    inst: &Instance,
    labels: &[u32],
    pair_factors: &[u32],
    unary_factors: &[u32],
    node: usize,
    label: u32,
    loss_augment: bool,
) -> f32 {
    let mut s = shared
        .prior
        .get(label as usize)
        .copied()
        .unwrap_or(1e-3 * 1.0);
    for &f in pair_factors {
        let pf = inst.pairwise[f as usize];
        s += if pf.a == node {
            weights.pair_w(pf.path, label, labels[pf.b])
        } else {
            weights.pair_w(pf.path, labels[pf.a], label)
        };
    }
    for &f in unary_factors {
        s += weights.unary_w(inst.unary[f as usize].path, label);
    }
    if loss_augment && label != inst.nodes[node].label {
        s += 1.0;
    }
    s
}

/// Best candidate for `node` against the current workspace labels; the
/// reference tie-break (first strict improvement wins) is preserved.
fn argmax<W: WeightStore>(
    shared: &EngineShared,
    weights: &W,
    inst: &Instance,
    ws: &Workspace,
    node: usize,
    loss_augment: bool,
) -> u32 {
    let mut best = ws.labels[node];
    let mut best_score = f32::NEG_INFINITY;
    let pair_factors = ws.pair_factors(node);
    let unary_factors = ws.unary_factors(node);
    for &c in &ws.cand {
        let s = node_score(
            shared,
            weights,
            inst,
            &ws.labels,
            pair_factors,
            unary_factors,
            node,
            c,
            loss_augment,
        );
        if s > best_score {
            best_score = s;
            best = c;
        }
    }
    if ws.cand.is_empty() {
        best = shared.global_candidates.first().copied().unwrap_or(0);
    }
    best
}

/// MAP inference: the compiled rewrite of [`CrfModel::infer`], identical
/// in output. Initialisation (blank → evidence pass) matches the
/// reference; the sweeps run delta-ICM over the dirty set.
pub(crate) fn infer<W: WeightStore>(
    shared: &EngineShared,
    weights: &W,
    inst: &Instance,
    loss_augment: bool,
    ws: &mut Workspace,
) -> Vec<u32> {
    ws.prepare(inst, shared.num_label_slots);

    // Blank out the unknowns: their stored labels are gold (or a caller
    // sentinel) and must never influence inference.
    let blank = shared.global_candidates.first().copied().unwrap_or(0);
    for i in 0..ws.unknowns.len() {
        ws.labels[ws.unknowns[i] as usize] = blank;
    }
    // Evidence pass, in node order (later unknowns see earlier picks).
    for i in 0..ws.unknowns.len() {
        let u = ws.unknowns[i] as usize;
        collect_candidates(shared, inst, ws, u);
        ws.labels[u] = argmax(shared, weights, inst, ws, u, loss_augment);
    }
    // Delta-ICM sweeps: every unknown starts dirty (the reference's
    // first sweep rescans everyone); afterwards only neighbours of a
    // flipped node can change their best response, so clean nodes are
    // skipped — provably without changing the trajectory, because a
    // node's score depends only on its neighbours' labels.
    for i in 0..ws.unknowns.len() {
        ws.dirty[ws.unknowns[i] as usize] = true;
    }
    // ICM work counters accumulate locally and post once per call: this
    // is the training/serving hot loop, and one atomic add per call (not
    // per node) keeps the instrumentation overhead unmeasurable.
    let mut sweeps = 0u64;
    let mut rescores = 0u64;
    let mut flips = 0u64;
    for _ in 0..shared.max_passes {
        sweeps += 1;
        let mut changed = false;
        for i in 0..ws.unknowns.len() {
            let u = ws.unknowns[i] as usize;
            if !ws.dirty[u] {
                continue;
            }
            ws.dirty[u] = false;
            rescores += 1;
            collect_candidates(shared, inst, ws, u);
            let best = argmax(shared, weights, inst, ws, u, loss_augment);
            if best != ws.labels[u] {
                ws.labels[u] = best;
                changed = true;
                flips += 1;
                for j in ws.pair_off[u] as usize..ws.pair_off[u + 1] as usize {
                    let pf = inst.pairwise[ws.pair_adj[j] as usize];
                    let v = if pf.a == u { pf.b } else { pf.a };
                    if !inst.nodes[v].known {
                        ws.dirty[v] = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    if telemetry::enabled() {
        telemetry::count("pigeon_icm_sweeps_total", sweeps);
        telemetry::count("pigeon_icm_rescores_total", rescores);
        telemetry::count("pigeon_icm_flips_total", flips);
    }
    ws.labels.clone()
}

impl CompiledCrf {
    /// MAP inference with an external workspace (the batch/training entry
    /// point: reuse one workspace across calls to amortise its buffers).
    pub fn infer_with(&self, inst: &Instance, ws: &mut Workspace) -> Vec<u32> {
        infer(&self.shared, &self.weights, inst, false, ws)
    }

    /// MAP inference on the calling thread's cached workspace.
    pub fn infer(&self, inst: &Instance) -> Vec<u32> {
        TLS_WORKSPACE.with(|ws| self.infer_with(inst, &mut ws.borrow_mut()))
    }

    /// Inference with an explicit loss-augmentation switch — the
    /// training path, surfaced for the equivalence property tests.
    pub(crate) fn infer_augmented(
        &self,
        inst: &Instance,
        loss_augment: bool,
        ws: &mut Workspace,
    ) -> Vec<u32> {
        infer(&self.shared, &self.weights, inst, loss_augment, ws)
    }

    /// The top-`k` candidates for `node` under the MAP assignment —
    /// the compiled equivalent of [`CrfModel::top_k`].
    pub(crate) fn top_k(&self, inst: &Instance, node: usize, k: usize) -> Vec<(u32, f32)> {
        TLS_WORKSPACE.with(|ws| self.top_k_with(inst, node, k, &mut ws.borrow_mut()))
    }

    fn top_k_with(
        &self,
        inst: &Instance,
        node: usize,
        k: usize,
        ws: &mut Workspace,
    ) -> Vec<(u32, f32)> {
        let labels = infer(&self.shared, &self.weights, inst, false, ws);
        collect_candidates(&self.shared, inst, ws, node);
        let pair_factors = ws.pair_factors(node);
        let unary_factors = ws.unary_factors(node);
        let mut scored: Vec<(u32, f32)> = ws
            .cand
            .iter()
            .map(|&c| {
                (
                    c,
                    node_score(
                        &self.shared,
                        &self.weights,
                        inst,
                        &labels,
                        pair_factors,
                        unary_factors,
                        node,
                        c,
                        false,
                    ),
                )
            })
            .collect();
        scored.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        scored.truncate(k);
        scored
    }

    /// Candidate labels for `node` against an explicit label vector —
    /// used by beam search, which explores many hypothetical states.
    pub(crate) fn node_candidates(
        &self,
        inst: &Instance,
        ws: &mut Workspace,
        labels: &[u32],
        node: usize,
    ) -> Vec<u32> {
        ws.labels.clear();
        ws.labels.extend_from_slice(labels);
        collect_candidates(&self.shared, inst, ws, node);
        ws.cand.clone()
    }

    /// Scores one `(node, label)` choice against an explicit label
    /// vector — beam search's scoring hook.
    pub(crate) fn score(
        &self,
        inst: &Instance,
        ws: &Workspace,
        labels: &[u32],
        node: usize,
        label: u32,
    ) -> f32 {
        node_score(
            &self.shared,
            &self.weights,
            inst,
            labels,
            ws.pair_factors(node),
            ws.unary_factors(node),
            node,
            label,
            false,
        )
    }

    /// Prepares the workspace's adjacency for `inst` without running
    /// inference (beam search drives its own schedule).
    pub(crate) fn prepare(&self, inst: &Instance, ws: &mut Workspace) {
        ws.prepare(inst, self.shared.num_label_slots);
    }

    /// Number of pairwise factors adjacent to `node` plus its unary
    /// factors — beam search's most-constrained-first ordering key.
    pub(crate) fn degree(&self, ws: &Workspace, node: usize) -> usize {
        ws.pair_factors(node).len() + ws.unary_factors(node).len()
    }

    /// The most frequent training label (the evidence-free fallback).
    pub(crate) fn global_head(&self) -> u32 {
        self.shared.global_candidates.first().copied().unwrap_or(0)
    }
}
