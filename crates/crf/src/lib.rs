//! Conditional random field learner with unary and pairwise path factors.
//!
//! This crate re-implements the learning stack the paper plugs its
//! representation into: a Nice2Predict-style CRF (Raychev et al.,
//! POPL'15) scoring joint label assignments over program elements, with
//! the paper's two extensions — **unary factors** derived from paths
//! between occurrences of the same element, and a **top-k candidates**
//! API (§5.1). Training is max-margin (structured-hinge subgradient with
//! loss-augmented MAP and weight averaging); inference is iterated
//! conditional modes over co-occurrence-derived candidate sets.
//!
//! The crate is deliberately representation-agnostic: labels and path
//! features are dense `u32` ids, interned by the caller. Swapping AST
//! paths for n-grams or hand-crafted relations — the paper's baselines —
//! changes only the ids fed in, never this crate, which is exactly the
//! experiment §5.3 runs.
//!
//! # Example
//!
//! ```
//! use pigeon_crf::{train, CrfConfig, Instance, Node};
//!
//! // Unknown node 0 relates to known node 1 via path 7; gold label 2.
//! let mut inst = Instance::new(vec![Node::unknown(2), Node::known(3)]);
//! inst.add_pair(0, 1, 7);
//!
//! let model = train(std::slice::from_ref(&inst), 4, &CrfConfig::default());
//! assert_eq!(model.predict(&inst)[0], 2);
//! ```

pub mod artifact;
mod beam;
pub mod checkpoint;
mod compiled;
mod instance;
mod model;
mod serialize;
mod train;

pub use compiled::{CompiledCrf, Workspace};
pub use instance::{Instance, Node, PairFactor, UnaryFactor};
pub use model::{CrfModel, ModelIssue, MAX_CANDIDATES_BOUND, MAX_PASSES_BOUND};
pub use train::{
    train, train_from_statistics, train_incremental, train_resumable, CrfConfig, RawStatistics,
    TrainControl, TrainOutcome, TrainState,
};
