//! Regression pin for the training rewrite: the compiled engine must
//! produce a model **byte-identical** to the original HashMap-based
//! implementation. The golden hash below was captured from the pre-rewrite
//! `train()` on this fixed corpus; any trajectory drift (scoring order,
//! candidate order, tie-breaks, sweep scheduling) changes the serialised
//! model and fails this test.

use pigeon_crf::{train, CrfConfig, Instance, Node};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic mixed corpus: joint unknown–unknown chains, evidence
/// links and unary factors, exercising every inference code path.
fn fixed_corpus() -> Vec<Instance> {
    let mut rng = SmallRng::seed_from_u64(0xB17E_1DE7);
    (0..120)
        .map(|i| {
            let path = rng.gen_range(0..20u32);
            let mut inst = Instance::new(vec![
                Node::unknown(path % 8),
                Node::unknown(8 + path % 4),
                Node::known(12 + path % 3),
            ]);
            inst.add_pair(0, 2, path);
            inst.add_pair(0, 1, 40 + path % 6);
            inst.add_unary(1, 100 + path);
            if i % 3 == 0 {
                inst.add_pair(1, 2, 70 + path % 4);
            }
            inst
        })
        .collect()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn trained_model_is_byte_identical_to_the_pre_rewrite_engine() {
    let corpus = fixed_corpus();
    let model = train(&corpus, 15, &CrfConfig::default());
    let json = model.to_json().expect("serialises");
    assert_eq!(
        fnv1a(json.as_bytes()),
        GOLDEN_FNV64,
        "trained-model bytes drifted from the pre-rewrite implementation \
         (serialised length {})",
        json.len()
    );
}

/// FNV-1a/64 of `to_json()` for the model trained above, captured from the
/// HashMap-based engine before the compiled rewrite.
const GOLDEN_FNV64: u64 = 5653426235291517717;

#[test]
fn training_is_byte_identical_under_any_jobs_value() {
    // `jobs` only parallelises the statistics pass, whose merge is a sum
    // of per-chunk integer counts — the serialised model must not move.
    let corpus = fixed_corpus();
    let serial = train(&corpus, 15, &CrfConfig::default())
        .to_json()
        .expect("serialises");
    for jobs in [0, 2, 4, 7] {
        let parallel = train(
            &corpus,
            15,
            &CrfConfig {
                jobs,
                ..CrfConfig::default()
            },
        )
        .to_json()
        .expect("serialises");
        assert_eq!(serial, parallel, "jobs = {jobs} changed the model bytes");
    }
}
