//! Property tests for CRF training and inference on random factor graphs.

use pigeon_crf::{train, CrfConfig, CrfModel, Instance, Node};
use proptest::prelude::*;

const NUM_LABELS: u32 = 10;

/// A recipe for a random instance: nodes and factor endpoints.
#[derive(Debug, Clone)]
struct InstanceSpec {
    nodes: Vec<(bool, u32)>,
    pairs: Vec<(usize, usize, u32)>,
    unaries: Vec<(usize, u32)>,
}

fn instance_strategy() -> impl Strategy<Value = InstanceSpec> {
    (2usize..7).prop_flat_map(|n| {
        let nodes = prop::collection::vec((any::<bool>(), 0..NUM_LABELS), n..=n);
        let pairs = prop::collection::vec((0..n, 0..n, 0..40u32), 0..10);
        let unaries = prop::collection::vec((0..n, 0..40u32), 0..6);
        (nodes, pairs, unaries).prop_map(|(nodes, pairs, unaries)| InstanceSpec {
            nodes,
            pairs,
            unaries,
        })
    })
}

fn build(spec: &InstanceSpec) -> Instance {
    let nodes = spec
        .nodes
        .iter()
        .map(|&(known, label)| {
            if known {
                Node::known(label)
            } else {
                Node::unknown(label)
            }
        })
        .collect();
    let mut inst = Instance::new(nodes);
    for &(a, b, path) in &spec.pairs {
        if a != b {
            inst.add_pair(a, b, path);
        }
    }
    for &(n, path) in &spec.unaries {
        inst.add_unary(n, path);
    }
    inst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Training never panics and predictions always stay within the label
    /// space, whatever the graph shape.
    #[test]
    fn training_and_prediction_are_total(specs in prop::collection::vec(instance_strategy(), 1..12)) {
        let instances: Vec<Instance> = specs.iter().map(build).collect();
        let model = train(&instances, NUM_LABELS, &CrfConfig {
            epochs: 2,
            ..CrfConfig::default()
        });
        for inst in &instances {
            let labels = model.predict(inst);
            prop_assert_eq!(labels.len(), inst.nodes.len());
            for (i, node) in inst.nodes.iter().enumerate() {
                if node.known {
                    prop_assert_eq!(labels[i], node.label, "known labels are fixed");
                } else {
                    prop_assert!(labels[i] < NUM_LABELS);
                }
            }
        }
    }

    /// The MAP assignment never scores below the all-global-head
    /// assignment ICM starts from: sweeps only improve the objective.
    #[test]
    fn icm_improves_over_its_initialisation(specs in prop::collection::vec(instance_strategy(), 2..10)) {
        let instances: Vec<Instance> = specs.iter().map(build).collect();
        let model = train(&instances, NUM_LABELS, &CrfConfig {
            epochs: 3,
            ..CrfConfig::default()
        });
        for inst in &instances {
            let map = model.predict(inst);
            let blank: Vec<u32> = inst
                .nodes
                .iter()
                .map(|n| if n.known { n.label } else { map_blank(&model) })
                .collect();
            prop_assert!(
                model.assignment_score(inst, &map)
                    >= model.assignment_score(inst, &blank) - 1e-4
            );
        }
    }

    /// Serialisation round-trips exactly on arbitrary trained models.
    #[test]
    fn json_round_trip(specs in prop::collection::vec(instance_strategy(), 1..8)) {
        let instances: Vec<Instance> = specs.iter().map(build).collect();
        let model = train(&instances, NUM_LABELS, &CrfConfig {
            epochs: 2,
            ..CrfConfig::default()
        });
        let json = model.to_json().unwrap();
        let restored = CrfModel::from_json(&json).unwrap();
        for inst in &instances {
            prop_assert_eq!(model.predict(inst), restored.predict(inst));
        }
    }

    /// The compiled engine is exactly the hash-map reference: plain and
    /// loss-augmented inference agree label-for-label on arbitrary
    /// graphs, including the candidate ordering and argmax tie-breaks.
    #[test]
    fn compiled_inference_equals_the_reference(specs in prop::collection::vec(instance_strategy(), 1..12)) {
        let instances: Vec<Instance> = specs.iter().map(build).collect();
        let model = train(&instances, NUM_LABELS, &CrfConfig {
            epochs: 2,
            ..CrfConfig::default()
        });
        for inst in &instances {
            prop_assert_eq!(model.predict(inst), model.predict_reference(inst));
            prop_assert_eq!(
                model.infer_compiled(inst, true),
                model.infer_reference(inst, true),
                "loss-augmented (training-path) inference diverged"
            );
        }
    }

    /// Delta-ICM (the compiled sweeps that re-score only neighbours of a
    /// flipped node) never returns an assignment scoring below the
    /// all-global-head initialisation: skipping clean nodes must not
    /// cost objective value.
    #[test]
    fn delta_icm_never_decreases_the_objective(specs in prop::collection::vec(instance_strategy(), 2..10)) {
        let instances: Vec<Instance> = specs.iter().map(build).collect();
        let model = train(&instances, NUM_LABELS, &CrfConfig {
            epochs: 3,
            ..CrfConfig::default()
        });
        for inst in &instances {
            let map = model.infer_compiled(inst, false);
            let blank: Vec<u32> = inst
                .nodes
                .iter()
                .map(|n| if n.known { n.label } else { map_blank(&model) })
                .collect();
            prop_assert!(
                model.assignment_score(inst, &map)
                    >= model.assignment_score(inst, &blank) - 1e-4
            );
        }
    }

    /// top_k output is sorted by score, bounded by k, and headed by the
    /// MAP label of the queried node.
    #[test]
    fn top_k_is_sorted_and_consistent(spec in instance_strategy()) {
        let inst = build(&spec);
        let model = train(std::slice::from_ref(&inst), NUM_LABELS, &CrfConfig {
            epochs: 2,
            ..CrfConfig::default()
        });
        let map = model.predict(&inst);
        for (i, node) in inst.nodes.iter().enumerate() {
            if node.known {
                continue;
            }
            let top = model.top_k(&inst, i, 4);
            prop_assert!(top.len() <= 4);
            prop_assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
            if let Some(&(first, _)) = top.first() {
                prop_assert_eq!(first, map[i], "top-1 equals the MAP label");
            }
        }
    }
}

fn map_blank(model: &CrfModel) -> u32 {
    // Matches the inference initialisation: the most frequent label.
    // (Exposed behaviourally through predict on an evidence-free node.)
    let inst = Instance::new(vec![Node::unknown(0)]);
    model.predict(&inst)[0]
}
