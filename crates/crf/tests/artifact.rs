//! The compiled binary artifact: byte-identity round-trips, decision
//! identity against the f64-trained reference (including under f16/i8
//! quantization), and corruption fuzzing — truncation, header
//! tampering, flipped section lengths, and bit flips must all surface
//! as coded errors, never panics.

use pigeon_crf::artifact::{
    checksum, file_checksum, is_artifact, read_artifact, write_artifact, ArtifactMeta, Quant,
    HEADER_LEN, MAGIC, SEC_CAPS, TABLE_ENTRY_LEN,
};
use pigeon_crf::{train, CrfConfig, CrfModel, Instance, Node, MAX_CANDIDATES_BOUND};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NUM_LABELS: u32 = 6;
const NUM_FEATURES: usize = 128;

/// A deterministic trained model with pair weights, unary weights and a
/// populated candidate index — every section of the artifact non-empty.
fn trained() -> (CrfModel, Vec<Instance>) {
    let mut rng = SmallRng::seed_from_u64(7);
    let instances: Vec<Instance> = (0..150)
        .map(|_| {
            let path = rng.gen_range(0..8u32);
            let mut inst = Instance::new(vec![Node::unknown(path % 4), Node::known(4 + path % 2)]);
            inst.add_pair(0, 1, path);
            inst.add_unary(0, 100 + path);
            inst
        })
        .collect();
    let model = train(&instances, NUM_LABELS, &CrfConfig::default());
    (model, instances)
}

fn meta() -> ArtifactMeta {
    ArtifactMeta {
        language: "js".to_owned(),
        target: "variables".to_owned(),
        abstraction: "full".to_owned(),
        max_length: 7,
        max_width: 3,
        semi_paths: true,
        top_k: 5,
        dataflow_contexts: false,
    }
}

fn vocab(prefix: &str, n: usize) -> Vec<String> {
    (0..n).map(|i| format!("{prefix}{i}")).collect()
}

fn compile(model: &CrfModel, quant: Quant) -> Vec<u8> {
    write_artifact(
        &meta(),
        &vocab("label", NUM_LABELS as usize),
        &vocab("feature", NUM_FEATURES),
        model,
        quant,
    )
    .expect("trained model compiles")
}

/// Rewrites the payload of one section in place, then repairs the
/// section and file checksums so the *semantic* validation — not the
/// integrity check — is what rejects the tampered bytes.
fn patch_section(bytes: &mut [u8], id: u32, patch: impl FnOnce(&mut [u8])) {
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let entry = (0..count)
        .map(|i| HEADER_LEN + i * TABLE_ENTRY_LEN)
        .find(|&e| u32::from_le_bytes(bytes[e..e + 4].try_into().unwrap()) == id)
        .expect("section present");
    let off = u64::from_le_bytes(bytes[entry + 8..entry + 16].try_into().unwrap()) as usize;
    let len = u64::from_le_bytes(bytes[entry + 16..entry + 24].try_into().unwrap()) as usize;
    patch(&mut bytes[off..off + len]);
    let sum = checksum(&bytes[off..off + len]);
    bytes[entry + 24..entry + 32].copy_from_slice(&sum.to_le_bytes());
    let fsum = file_checksum(bytes);
    bytes[16..24].copy_from_slice(&fsum.to_le_bytes());
}

#[test]
fn round_trip_is_byte_identical_for_every_quantization() {
    let (model, _) = trained();
    for quant in [Quant::F32, Quant::F16, Quant::I8] {
        let bytes = compile(&model, quant);
        assert!(is_artifact(&bytes));
        let art = read_artifact(&bytes).expect("fresh artifact loads");
        assert!(art.model.is_artifact_backed());
        assert_eq!(art.quant, quant);
        assert_eq!(art.meta, meta());
        assert_eq!(art.labels, vocab("label", NUM_LABELS as usize));
        assert_eq!(art.features, vocab("feature", NUM_FEATURES));
        // Recompiling the loaded model reproduces the file exactly:
        // nothing is lost or renormalised on the way through.
        let again = write_artifact(&art.meta, &art.labels, &art.features, &art.model, quant)
            .expect("loaded model recompiles");
        assert_eq!(bytes, again, "{quant:?} recompile diverged");
    }
}

#[test]
fn artifact_predictions_match_the_reference_for_every_quantization() {
    let (model, instances) = trained();
    for quant in [Quant::F32, Quant::F16, Quant::I8] {
        let art = read_artifact(&compile(&model, quant)).expect("loads");
        for inst in &instances {
            assert_eq!(
                art.model.predict(inst),
                model.predict(inst),
                "{quant:?} changed a decision"
            );
        }
    }
}

#[test]
fn every_truncation_is_a_coded_error_not_a_panic() {
    let (model, _) = trained();
    let bytes = compile(&model, Quant::I8);
    for len in 0..bytes.len() {
        let err = read_artifact(&bytes[..len]).expect_err("truncated file must not load");
        assert!(!err.is_empty(), "error at length {len} carries no message");
    }
}

#[test]
fn every_single_byte_flip_is_detected() {
    let (model, _) = trained();
    let bytes = compile(&model, Quant::F32);
    for i in 0..bytes.len() {
        let mut tampered = bytes.clone();
        tampered[i] ^= 0xff;
        assert!(
            read_artifact(&tampered).is_err(),
            "flip at byte {i} went undetected"
        );
    }
}

#[test]
fn header_tampering_is_rejected() {
    let (model, _) = trained();
    let bytes = compile(&model, Quant::F32);

    let mut bad_magic = bytes.clone();
    bad_magic[..4].copy_from_slice(b"NOPE");
    assert!(!is_artifact(&bad_magic));
    let err = read_artifact(&bad_magic).unwrap_err();
    assert!(err.contains("magic"), "unexpected error: {err}");

    // An unsupported version, with the file checksum repaired so the
    // version check itself fires.
    let mut future = bytes.clone();
    future[4..8].copy_from_slice(&99u32.to_le_bytes());
    let sum = file_checksum(&future);
    future[16..24].copy_from_slice(&sum.to_le_bytes());
    let err = read_artifact(&future).unwrap_err();
    assert!(err.contains("version"), "unexpected error: {err}");
}

#[test]
fn flipped_section_length_is_rejected() {
    let (model, _) = trained();
    let bytes = compile(&model, Quant::F32);
    // Inflate the first section's recorded length past the end of the
    // file; repair the file checksum so the bounds check is what fires.
    let mut tampered = bytes.clone();
    let len_at = HEADER_LEN + 16;
    tampered[len_at..len_at + 8].copy_from_slice(&(bytes.len() as u64).to_le_bytes());
    let sum = file_checksum(&tampered);
    tampered[16..24].copy_from_slice(&sum.to_le_bytes());
    let err = read_artifact(&tampered).unwrap_err();
    assert!(
        err.contains("outside") || err.contains("beyond") || err.contains("overlap"),
        "unexpected error: {err}"
    );
}

#[test]
fn out_of_bound_caps_are_rejected_even_with_valid_checksums() {
    let (model, _) = trained();
    let mut bytes = compile(&model, Quant::F32);
    patch_section(&mut bytes, SEC_CAPS, |caps| {
        let huge = (MAX_CANDIDATES_BOUND as u64 + 1).to_le_bytes();
        caps[..8].copy_from_slice(&huge);
    });
    let err = read_artifact(&bytes).unwrap_err();
    assert!(err.contains("max_candidates"), "unexpected error: {err}");
}

#[test]
fn artifact_backed_models_refuse_json_serialisation() {
    let (model, _) = trained();
    let art = read_artifact(&compile(&model, Quant::F32)).expect("loads");
    let err = art.model.to_json().unwrap_err();
    assert!(err.to_string().contains("artifact"), "unexpected: {err}");
}

#[test]
fn junk_is_not_an_artifact() {
    assert!(!is_artifact(b""));
    assert!(!is_artifact(b"{\"pair_weights\": []}"));
    assert!(is_artifact(&MAGIC));
    assert!(read_artifact(&MAGIC).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Quantized artifacts are decision-identical to the f64-trained
    /// reference on arbitrary trained models, not just the fixed
    /// fixture: per-path power-of-two scales keep the ICM argmax stable.
    #[test]
    fn quantized_decisions_match_the_reference(seed in 0u64..1000, quant_i8 in any::<bool>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let instances: Vec<Instance> = (0..40)
            .map(|_| {
                let path = rng.gen_range(0..8u32);
                let mut inst =
                    Instance::new(vec![Node::unknown(path % 4), Node::known(4 + path % 2)]);
                inst.add_pair(0, 1, path);
                inst.add_unary(0, 100 + path);
                inst
            })
            .collect();
        let model = train(&instances, NUM_LABELS, &CrfConfig::default());
        let quant = if quant_i8 { Quant::I8 } else { Quant::F16 };
        let art = read_artifact(&compile(&model, quant)).expect("loads");
        for inst in &instances {
            prop_assert_eq!(art.model.predict(inst), model.predict(inst));
        }
    }

    /// Arbitrary leading garbage never panics the loader.
    #[test]
    fn random_bytes_never_panic_the_loader(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_artifact(&bytes);
        let mut magicked = MAGIC.to_vec();
        magicked.extend_from_slice(&bytes);
        let _ = read_artifact(&magicked);
    }
}

#[test]
fn duplicate_json_entries_name_the_first_duplicate() {
    let base = r#"{"label_counts": [1, 1], "global_candidates": [0],
        "max_candidates": 4, "max_passes": 4, "candidates": []"#;
    let json = format!(
        r#"{base}, "unary_weights": [],
           "pair_weights": [[3, 0, 1, 0.5], [3, 0, 1, -0.5]]}}"#
    );
    let err = CrfModel::from_json(&json).unwrap_err().to_string();
    assert!(
        err.contains("duplicate pairwise weight entry (path 3, labels 0/1)"),
        "unexpected: {err}"
    );

    let json = format!(
        r#"{base}, "pair_weights": [],
           "unary_weights": [[2, 1, 0.5], [2, 1, 0.25]]}}"#
    );
    let err = CrfModel::from_json(&json).unwrap_err().to_string();
    assert!(
        err.contains("duplicate unary weight entry (path 2, label 1)"),
        "unexpected: {err}"
    );

    let json = r#"{"label_counts": [1, 1], "global_candidates": [0],
        "max_candidates": 4, "max_passes": 4, "pair_weights": [], "unary_weights": [],
        "candidates": [[1, 0, 0, [[1, 2]]], [1, 0, 0, [[0, 1]]]]}"#;
    let err = CrfModel::from_json(json).unwrap_err().to_string();
    assert!(
        err.contains("duplicate candidate entry (path 1, label 0, side 0)"),
        "unexpected: {err}"
    );
}

#[test]
fn json_caps_beyond_the_bound_are_rejected() {
    let json = format!(
        r#"{{"pair_weights": [], "unary_weights": [], "label_counts": [],
            "candidates": [], "global_candidates": [],
            "max_candidates": {}, "max_passes": 1}}"#,
        MAX_CANDIDATES_BOUND + 1
    );
    let err = CrfModel::from_json(&json).unwrap_err().to_string();
    assert!(err.contains("max_candidates"), "unexpected: {err}");
}
