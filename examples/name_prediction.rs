//! Variable-name prediction on the paper's stripped examples.
//!
//! Trains the PIGEON facade on a synthetic JavaScript corpus, then asks
//! it to recover names in programs with deliberately non-descriptive
//! names — the paper's §2 scenario (Fig. 1a, and the Fig. 8 function) —
//! printing the ranked candidates, as in the paper's Table 4a.
//!
//! Run with: `cargo run --release --example name_prediction`

use pigeon::corpus::{generate, CorpusConfig, Language};
use pigeon::{Pigeon, PigeonConfig};

fn main() {
    println!("Generating training corpus…");
    let corpus = generate(
        Language::JavaScript,
        &CorpusConfig::default().with_files(800),
    );
    let sources: Vec<&str> = corpus.docs.iter().map(|d| d.source.as_str()).collect();

    println!("Training the CRF ({} files)…", sources.len());
    let namer =
        Pigeon::train_variable_namer(Language::JavaScript, &sources, &PigeonConfig::default())
            .expect("training corpus parses");

    // ---- The paper's Fig. 1a: predict a name for `d`. -----------------
    let fig1 = "function f() { var d = false; while (!d) { if (check()) { d = true; } } }";
    println!("\nQuery (Fig. 1a): {fig1}");
    for p in namer.predict(fig1).expect("query parses") {
        println!(
            "  variable `{}` → predicted `{}`",
            p.current_name, p.predicted_name
        );
        println!("  top candidates (cf. the paper's Table 4a):");
        for (rank, (name, score)) in p.candidates.iter().enumerate().take(8) {
            println!("    {}. {name:12} (score {score:+.2})", rank + 1);
        }
    }

    // ---- The paper's Fig. 8: function f(a, b, c). ---------------------
    let fig8 = "function f(a, b, c) { b.open('GET', a, false); b.send(c); }";
    println!("\nQuery (Fig. 8): {fig8}");
    for p in namer.predict(fig8).expect("query parses") {
        let top: Vec<&str> = p
            .candidates
            .iter()
            .take(3)
            .map(|(n, _)| n.as_str())
            .collect();
        println!(
            "  `{}` → `{}`   (top-3: {})",
            p.current_name,
            p.predicted_name,
            top.join(", ")
        );
    }
    println!(
        "\nThe paper's PIGEON names these url / request / callback \
         (Fig. 8, \"AST Paths + CRFs\" column)."
    );
}
