//! Per-role accuracy breakdown (§5.4-style qualitative analysis).
//!
//! Which kinds of names does the model recover, and when it misses, does
//! it at least stay inside the synonym class (`found` for `done`) or
//! does it confuse roles (`count` for `done`)? The corpus records every
//! variable's generating role, so this is measurable exactly.
//!
//! Run with: `cargo run --release --example role_breakdown`

use pigeon::corpus::{CorpusConfig, Language};
use pigeon::eval::{role_breakdown, NameExperiment};

fn main() {
    let exp = NameExperiment {
        corpus: CorpusConfig::default().with_files(600),
        ..NameExperiment::var_names(Language::JavaScript)
    };
    println!("JavaScript variable naming, per generating role:\n");
    println!(
        "{:<14} {:>8} {:>10} {:>12}",
        "role", "tested", "exact", "in-class"
    );
    let scores = role_breakdown(&exp);
    for s in &scores {
        println!(
            "{:<14} {:>8} {:>9.1}% {:>11.1}%",
            format!("{:?}", s.role),
            s.total,
            100.0 * s.accuracy(),
            100.0 * s.class_accuracy(),
        );
    }
    let total: usize = scores.iter().map(|s| s.total).sum();
    let exact: usize = scores.iter().map(|s| s.exact).sum();
    let in_class: usize = scores.iter().map(|s| s.in_class).sum();
    println!(
        "\noverall: {:.1}% exact, {:.1}% within the synonym class ({} predictions)",
        100.0 * exact as f64 / total as f64,
        100.0 * in_class as f64 / total as f64,
        total
    );
    println!(
        "The gap between the two columns is the paper's Table 4 effect: \
         wrong answers are usually semantically similar names, not noise."
    );
}
