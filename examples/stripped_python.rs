//! The paper's Fig. 7: recovering names in a stripped Python program.
//!
//! The paper shows `def sh3(c)` with single-letter names being renamed to
//! `cmd`, `process`, `out`, `err`, `retcode`. We train a Python
//! variable namer on the synthetic corpus and run it on a program of the
//! same shape, printing the before/after the way the figure does.
//!
//! Run with: `cargo run --release --example stripped_python`

use pigeon::corpus::{generate, CorpusConfig, Language};
use pigeon::{Pigeon, PigeonConfig};

fn main() {
    println!("Training a Python variable namer…");
    let corpus = generate(Language::Python, &CorpusConfig::default().with_files(800));
    let sources: Vec<&str> = corpus.docs.iter().map(|d| d.source.as_str()).collect();
    let namer = Pigeon::train_variable_namer(Language::Python, &sources, &PigeonConfig::default())
        .expect("training corpus parses");

    // A stripped program in the corpus's dialect: a guarded read with an
    // error handler plus a counting loop, all names minified.
    let stripped = "\
def f(p):
    try:
        d = fetch(p)
        return d
    except IOError as e:
        report(e)
        return None

def g(xs, t):
    c = 0
    for i in range(len(xs)):
        if xs[i] == t:
            c += 1
    return c
";
    println!("\nStripped program:\n{stripped}");
    println!("Predicted names:");
    let mut renamed = stripped.to_owned();
    for p in namer.predict(stripped).expect("query parses") {
        println!(
            "  {:4} → {:12} (runners-up: {})",
            p.current_name,
            p.predicted_name,
            p.candidates
                .iter()
                .skip(1)
                .take(3)
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>()
                .join(", "),
        );
        renamed = rename_identifier(&renamed, &p.current_name, &p.predicted_name);
    }
    println!("\nRecovered program (cf. the paper's Fig. 7 right column):\n{renamed}");
}

/// Whole-word textual rename, good enough for display purposes.
fn rename_identifier(source: &str, from: &str, to: &str) -> String {
    let mut out = String::with_capacity(source.len());
    let bytes: Vec<char> = source.chars().collect();
    let fchars: Vec<char> = from.chars().collect();
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut i = 0;
    while i < bytes.len() {
        let matches = bytes[i..].starts_with(&fchars[..])
            && (i == 0 || !is_ident(bytes[i - 1]))
            && bytes.get(i + fchars.len()).is_none_or(|&c| !is_ident(c));
        if matches {
            out.push_str(to);
            i += fchars.len();
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    out
}
