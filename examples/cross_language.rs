//! The representation is language-agnostic: one pipeline, four languages.
//!
//! Runs the variable-name task end to end in JavaScript, Java, Python and
//! C# — a miniature of the paper's Table 2 top block — and shows that a
//! single generic mechanism ("no special assumptions regarding the AST or
//! the programming language", §2) drives all four.
//!
//! Run with: `cargo run --release --example cross_language`

use pigeon::corpus::{CorpusConfig, Language};
use pigeon::eval::{run_name_experiment, NameExperiment, Representation};

fn main() {
    let files = 400;
    println!("Variable-name prediction, {files} files per language\n");
    println!(
        "{:<12} {:>10} {:>10} {:>8} {:>10}",
        "Language", "AST paths", "no-paths", "tested", "train(s)"
    );
    for language in Language::ALL {
        let base = NameExperiment {
            corpus: CorpusConfig::default().with_files(files),
            ..NameExperiment::var_names(language)
        };
        let paths = run_name_experiment(&base);
        let no_paths =
            run_name_experiment(&base.clone().with_representation(Representation::NoPaths));
        println!(
            "{:<12} {:>9.1}% {:>9.1}% {:>8} {:>10.1}",
            language.name(),
            100.0 * paths.accuracy,
            100.0 * no_paths.accuracy,
            paths.n_test,
            paths.train_secs,
        );
    }
    println!(
        "\nAs in the paper's Table 2, AST paths beat the no-path bag-of-\
         neighbours baseline in every language with the same generic pipeline."
    );
}
