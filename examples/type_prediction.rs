//! Full-type prediction for Java (§5.3.3 of the paper).
//!
//! Predicts *fully-qualified* types — `com.mysql.jdbc.Connection` vs
//! `org.apache.http.Connection` — for expressions, using leaf→nonterminal
//! AST paths, and compares against the paper's naive baseline that
//! predicts `java.lang.String` everywhere.
//!
//! Run with: `cargo run --release --example type_prediction`

use pigeon::corpus::CorpusConfig;
use pigeon::eval::{naive_string_type_accuracy, run_type_experiment, TypeExperiment};

fn main() {
    let corpus = CorpusConfig::default().with_files(500);

    println!("Full-type prediction on typed Java (length 4, width 1)…");
    let paths = run_type_experiment(&TypeExperiment {
        corpus,
        ..TypeExperiment::default()
    });
    let naive = naive_string_type_accuracy(&corpus, 0.8);

    println!("\n{:<28} {:>10}", "Model", "Accuracy");
    println!(
        "{:<28} {:>9.1}%   (paper: 69.1%)",
        "AST paths + CRFs",
        100.0 * paths.accuracy
    );
    println!(
        "{:<28} {:>9.1}%   (paper: 24.1%)",
        "naive java.lang.String",
        100.0 * naive.accuracy
    );
    println!(
        "\n{} expressions evaluated; {} distinct path features.",
        paths.n_test, paths.n_features
    );
    println!(
        "The catalogue contains deliberately ambiguous simple names \
         (Connection, Document, Logger, Date, List): the short type name in \
         the declaration is not enough, the surrounding usage paths are."
    );
}
