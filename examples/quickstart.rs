//! Quickstart: extract AST paths from the paper's own example programs.
//!
//! Reproduces the paths shown in the paper's Fig. 1/2 (the `done` loop),
//! Fig. 4 (`var item = array[i];`) and Fig. 5 (`var a, b, c, d;`), and
//! demonstrates the abstraction levels of §5.6.
//!
//! Run with: `cargo run --example quickstart`

use pigeon::core::{extract, path_between, Abstraction, ExtractionConfig, PathEnd};

fn main() {
    // ---- Fig. 1: while (!d) { if (someCondition()) { d = true; } } ----
    let fig1 = "while (!d) { if (someCondition()) { d = true; } }";
    let ast = pigeon::js::parse(fig1).expect("Fig. 1 parses");
    println!("Fig. 1 program: {fig1}\n");
    println!("AST:\n{}", pigeon::ast::pretty(&ast));

    let contexts = extract(&ast, &ExtractionConfig::with_limits(8, 3));
    println!(
        "Extracted {} path-contexts; those involving `d`:",
        contexts.len()
    );
    for ctx in &contexts {
        let touches_d = ctx.start.as_str() == "d" || ctx.end.as_str() == "d";
        if touches_d {
            println!("  {}", ctx.display_triple());
        }
    }

    // The headline path of the paper (path I of §2).
    let d_to_d = contexts
        .iter()
        .find(|c| c.start.as_str() == "d" && c.end.as_str() == "d")
        .expect("the two occurrences of d are connected");
    println!("\nPath I of the paper (between the two occurrences of `d`):");
    println!("  {}", d_to_d.path);
    assert_eq!(
        d_to_d.path.to_string(),
        "SymbolRef ↑ UnaryPrefix! ↑ While ↓ If ↓ Assign= ↓ SymbolRef"
    );

    // Path II: d ↔ true.
    let d_to_true = contexts
        .iter()
        .filter(|c| c.start.as_str() == "d" && c.end.as_str() == "true")
        .min_by_key(|c| c.path.len())
        .expect("d relates to true");
    println!("Path II of the paper (d ↔ true):");
    println!("  {}", d_to_true.path);

    // ---- §5.6 abstractions applied to path I --------------------------
    println!("\nAbstractions of path I (§5.6):");
    for a in Abstraction::ALL {
        println!("  {:15} {}", a.name(), a.apply(&d_to_d.path));
    }

    // ---- Fig. 4: var item = array[i]; ---------------------------------
    let fig4 = "var item = array[i];";
    let ast4 = pigeon::js::parse(fig4).expect("Fig. 4 parses");
    let ctxs4 = extract(&ast4, &ExtractionConfig::default());
    println!("\nFig. 4 program: {fig4}");
    for ctx in &ctxs4 {
        if ctx.start.as_str() == "item" && ctx.end.as_str() == "array" {
            println!("  Example 4.5 path-context: {}", ctx.display_triple());
        }
    }

    // ---- Fig. 5: length and width -------------------------------------
    let fig5 = "var a, b, c, d;";
    let ast5 = pigeon::js::parse(fig5).expect("Fig. 5 parses");
    let leaves = ast5.leaves();
    let (p, width) = path_between(&ast5, leaves[0], leaves[3]);
    println!("\nFig. 5 program: {fig5}");
    println!("  a–d path: {p}");
    println!(
        "  length = {} (paper: 4), width = {} (paper: 3)",
        p.len(),
        width
    );
    assert_eq!((p.len(), width), (4, 3));

    // Semi-paths and nonterminal ends also exist in the family:
    let semi = extract(&ast, &ExtractionConfig::with_limits(3, 3).semi_paths(true));
    let n_semi = semi
        .iter()
        .filter(|c| matches!(c.end, PathEnd::Node(_)))
        .count();
    println!("\nWith semi-paths enabled, {n_semi} terminal→ancestor contexts join the set.");
}
